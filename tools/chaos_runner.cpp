// chaos_runner — CI chaos harness for the failpoint subsystem
// (docs/chaos.md).
//
// Draws a seeded random failpoint schedule over the instrumented sites,
// runs a distributed campaign (real coordinator + two in-process worker
// daemons on ephemeral TCP ports) under that schedule, and checks the
// survival invariants:
//
//   1. the merged chaos report is byte-identical to the clean
//      single-host run;
//   2. the coordinator journal the chaos run leaves behind (torn
//      markers and all) resumes to the same bytes under a healthy
//      registry;
//   3. a campaign with an expired deadline is interrupted, one with a
//      generous deadline is unaffected;
//   4. fabric shard accounting is consistent
//      (resumed + remote + local == total).
//
// Exit 0 when every invariant holds, 1 on the first violation (the
// schedule and metrics JSON artifacts identify the failing seed).
//
//   chaos_runner [--seed <n>] [--schedule-json <path>]
//                [--metrics-json <path>]

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "common/cli_args.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "fabric/coordinator.hpp"
#include "service/handlers.hpp"
#include "service/server.hpp"
#include "service/session.hpp"

namespace {

using namespace cwsp;

constexpr char kDesign[] =
    "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
    "t1 = NAND(a, b)\nt2 = XOR(t1, q)\nq = DFF(t2)\n";

// Sites safe to arm wholesale for a fabric campaign: every one is behind
// a recovery ladder that must converge on the clean report. The service
// admission sites (accept/read_line/enqueue) and abort-class actions are
// exercised by test_chaos instead — they fail individual *requests* by
// design, which is the wrong invariant for a byte-identity harness.
struct SiteSpec {
  const char* name;
  // Action menu the schedule may draw for this site.
  const char* actions[3];
  std::size_t action_count;
};

const SiteSpec kSites[] = {
    {"campaign.journal.shard_marker", {"torn:9", "torn:40", "garble:12"}, 3},
    {"fabric.dispatch.send", {"err:chaos dispatch", "delay:2"}, 2},
    {"fabric.dispatch.response", {"garble:3", "torn:2"}, 2},
    {"fabric.heartbeat", {"err:chaos heartbeat", "delay:1"}, 2},
    {"fabric.commit", {"delay:1"}, 1},
    {"sim.lane.run_batch", {"err:chaos lanes"}, 1},
};

const char* kPolicies[] = {"@once", "@every=2", "@every=3", "@prob=0.4"};

std::string draw_schedule(std::uint64_t seed) {
  Rng rng = Rng::stream(seed, 0xc4a05);
  std::string spec;
  for (const SiteSpec& site : kSites) {
    // Each site participates with probability 3/4; at least one always
    // does (the schedule re-rolls an empty draw below).
    if (!rng.next_bool(0.75)) continue;
    if (!spec.empty()) spec += ';';
    spec += site.name;
    spec += '=';
    spec += site.actions[rng.next_below(site.action_count)];
    spec += kPolicies[rng.next_below(sizeof(kPolicies) /
                                     sizeof(kPolicies[0]))];
  }
  if (spec.empty()) return draw_schedule(seed * 6364136223846793005ULL + 1);
  return spec;
}

/// An honest in-process worker daemon on an ephemeral TCP port.
class Worker {
 public:
  explicit Worker(const CellLibrary& lib) {
    char tmpl[] = "/tmp/cwsp_chaosrun_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    dir_ = tmpl;
    service::ServerOptions options;
    options.socket_path = dir_ + "/s";
    options.workers = 2;
    options.tcp_endpoint = "127.0.0.1:0";
    server_ = std::make_unique<service::Server>(std::move(options), lib);
    thread_ = std::thread([this] { server_->run(); });
    for (int i = 0; i < 400 && server_->tcp_port() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (server_->tcp_port() == 0) throw Error("worker TCP port never bound");
  }

  ~Worker() {
    server_->request_shutdown();
    thread_.join();
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server_->tcp_port());
  }

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::unique_ptr<service::Server> server_;
  std::thread thread_;
};

int fail(const std::string& invariant) {
  std::cerr << "chaos_runner: INVARIANT VIOLATED: " << invariant << '\n';
  return 1;
}

void write_artifact(const std::string& path, const std::string& body) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "chaos_runner: cannot write artifact '" << path << "'\n";
    return;
  }
  out << body;
}

}  // namespace

int main(int argc, char** argv) {
  // No subcommand slot: options start at argv[1].
  const CliArgs args = parse_cli_args(argc, argv, 1);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.number("seed", 1));
  const std::string schedule_path = args.text("schedule-json", "");
  const std::string metrics_path = args.text("metrics-json", "");

  try {
    const CellLibrary lib = make_default_library();
    const auto session = service::DesignSession::build("demo", kDesign, lib);

    service::CampaignSpec spec;
    spec.runs = 24;
    spec.cycles = 10;
    spec.seed = 7;
    spec.jobs = 2;
    spec.adversarial = true;
    spec.json = true;

    const std::string schedule = draw_schedule(seed);
    write_artifact(schedule_path,
                   "{\"schema\":\"cwsp-chaos-schedule-v1\",\"seed\":" +
                       std::to_string(seed) + ",\"spec\":\"" + schedule +
                       "\"}\n");
    std::cerr << "chaos_runner: seed " << seed << " schedule: " << schedule
              << '\n';

    // Clean single-host reference (registry disarmed).
    failpoint::Registry::global().clear();
    const std::string expected = service::run_campaign(*session, spec).output;

    // Chaos run: the schedule armed over a real two-worker topology with
    // a coordinator journal.
    char tmpl[] = "/tmp/cwsp_chaosj_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    const std::string journal = std::string(tmpl) + "/fabric.journal";

    Worker w1(lib);
    Worker w2(lib);
    fabric::FabricOptions options;
    options.workers = {w1.endpoint(), w2.endpoint()};
    options.dial.attempts = 2;
    options.dial.backoff_base_ms = 5.0;
    options.dial.backoff_cap_ms = 20.0;
    options.heartbeat_interval_ms = 100.0;
    options.heartbeat_timeout_ms = 800.0;
    options.worker_failure_limit = 4;
    options.journal_path = journal;
    options.log = &std::cerr;

    failpoint::Registry::global().configure(schedule, seed);
    const fabric::FabricOutcome chaos =
        fabric::run_distributed_campaign(*session, kDesign, spec, options);
    failpoint::Registry::global().clear();

    write_artifact(metrics_path, metrics::Registry::global().to_json());

    if (chaos.outcome.output != expected) {
      return fail("chaos report differs from the clean single-host run");
    }
    if (chaos.stats.shards_resumed + chaos.stats.shards_remote +
            chaos.stats.shards_local !=
        chaos.stats.shards_total) {
      return fail("fabric shard accounting is inconsistent");
    }

    // The journal the chaos run left behind — torn markers included —
    // must resume to the same bytes under a healthy registry.
    fabric::FabricOptions resume = options;
    resume.workers.clear();
    resume.resume = true;
    const fabric::FabricOutcome recovered =
        fabric::run_distributed_campaign(*session, kDesign, spec, resume);
    if (recovered.outcome.output != expected) {
      return fail("journal resume after chaos diverged from the clean run");
    }

    // Deadline propagation: a generous budget changes nothing; an
    // expired one interrupts instead of hanging.
    fabric::FabricOptions relaxed = resume;
    relaxed.resume = false;
    relaxed.journal_path.clear();
    relaxed.deadline_ms = 600'000.0;
    if (fabric::run_distributed_campaign(*session, kDesign, spec, relaxed)
            .outcome.output != expected) {
      return fail("a generous deadline perturbed the report");
    }
    fabric::FabricOptions strict = relaxed;
    strict.deadline_ms = 0.0001;
    if (fabric::run_distributed_campaign(*session, kDesign, spec, strict)
            .outcome.status != campaign::CampaignStatus::kInterrupted) {
      return fail("an expired deadline did not interrupt the campaign");
    }

    write_artifact(metrics_path, metrics::Registry::global().to_json());
    std::cerr << "chaos_runner: seed " << seed
              << " survived: report byte-identical, journal resumable, "
                 "deadlines honored\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "chaos_runner: error: " << e.what() << '\n';
    return 1;
  }
}
