// cwsp_tool — command-line front end to the library.
//
//   cwsp_tool sta <design.bench>               static timing report
//   cwsp_tool harden <design.bench> [options]  hardening report
//       --q150            use the Q=150 fC envelope (default Q=100 fC)
//       --delta <ps>      custom glitch width (Table-3 mode)
//       --skew <ps>       clock skew derating
//       --areas           itemised protection-area breakdown
//   cwsp_tool lint <design.bench> [options]    design-rule check
//       --hardened        also check the protection invariants: Eq. 5
//                         envelope, CLK_DEL fit, EQGLB-tree bounds, and
//                         (for sequential designs) the elaborated
//                         hardened system's per-FF structure
//       --json            machine-readable report (docs/lint.md schema)
//       --fallback-cells <a,b,...>  cells with calibrated-fallback delay
//                         arcs (from `characterize --json`); enables the
//                         timing-fallback-arc rule
//       --fail-on <warn|error>  exit-1 threshold (default error)
//       --q150 / --delta <ps> / --skew <ps> / --period <ps>
//                         protection configuration under --hardened
//   cwsp_tool campaign <design.bench> [options] fault-injection campaign
//       --runs <n> --cycles <n> --width <ps> --seed <n>
//       --jobs <n>        worker threads (reports are identical for any n)
//       --timeout-ms <v>  per-strike wall-clock budget (hang → inconclusive)
//       --journal <path>  checkpoint file, one line per finished strike
//       --resume <path>   resume an interrupted campaign from its journal
//       --adversarial     add protection-path / clock-edge / out-of-envelope
//                         strike classes to the plan
//       --minimize        shrink escapes to minimal repros
//       --artifacts <dir> write repro .bench + .strike files there
//       --shard <i>/<n>   run only shard i (1-based) of an n-way split
//       --stop-after <n>  stop after n fresh strikes (exit 3; for testing
//                         interruption/resume)
//       --json            machine-readable report (docs/campaign.md schema)
//   cwsp_tool replay <repro.strike>            replay a minimized escape
//   cwsp_tool glitch [--q <fC>] [--json]       struck-inverter waveform
//       --json            waveform summary + solver diagnostics
//                         (docs/minispice.md schema)
//   cwsp_tool characterize [options]           electrical cell characterization
//       --json            machine-readable report with per-arc provenance
//       --load <fF>       output load (default 2 fF)
//       --max-newton <n>  Newton iteration budget (small values provoke
//                         calibrated-fallback arcs — for testing the
//                         degradation path)
//       --no-cwsp         skip the CWSP element arcs
//   cwsp_tool elaborate <n_ffs> [--dot]        checker netlist (.bench/.dot)
//   cwsp_tool ser <design.bench> [--fail <frac>] soft-error-rate estimate
//   cwsp_tool suite <table1|table2|table3>     reproduce a paper table row set
//
// Exit codes: 0 success, 1 findings (lint failures, campaign escapes,
// failed replay), 2 usage/parse errors, 3 solver failures (also: campaign
// interrupted via --stop-after), 4 internal errors. Errors print to
// stderr, never stdout.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/minimize.hpp"
#include "campaign/report.hpp"
#include "cell/characterize.hpp"
#include "common/cli_args.hpp"
#include "common/table.hpp"
#include "cwsp/area_report.hpp"
#include "cwsp/coverage.hpp"
#include "cwsp/elaborate.hpp"
#include "cwsp/elaborate_system.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"
#include "lint/lint.hpp"
#include "netlist/analysis.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/transform.hpp"
#include "netlist/verilog_writer.hpp"
#include "netlist/writer.hpp"
#include "set/ser.hpp"
#include "spice/subckt.hpp"
#include "sta/sta.hpp"

namespace {

using namespace cwsp;
using Args = cwsp::CliArgs;

int usage() {
  std::cerr << "usage: cwsp_tool <sta|harden|lint|campaign|replay|glitch|"
               "elaborate|ser|verilog|optimize|stats> ...\n"
               "see the header of tools/cwsp_tool.cpp for option details\n";
  return 2;
}

core::ProtectionParams params_from(const Args& args) {
  if (args.has("delta")) {
    return core::ProtectionParams::for_glitch_width(
        Picoseconds(args.number("delta", 500.0)));
  }
  return args.has("q150") ? core::ProtectionParams::q150()
                          : core::ProtectionParams::q100();
}

int cmd_lint(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const std::string& path = args.positional[0];

  lint::LintOptions options;
  if (args.has("hardened")) {
    options.params = params_from(args);
    options.clock_skew = Picoseconds(args.number("skew", 0.0));
    if (args.has("period")) {
      options.clock_period = Picoseconds(args.number("period", 0.0));
    }
  }
  if (args.has("fallback-cells")) {
    // Comma-separated cell names whose characterization fell back to the
    // calibrated model (from `characterize --json`).
    std::string list = args.text("fallback-cells", "");
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string cell = list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!cell.empty()) options.fallback_cells.push_back(cell);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  lint::LintReport report;
  std::vector<BenchParseIssue> issues;
  BenchParseOptions parse_options;
  parse_options.lenient = true;
  parse_options.issues = &issues;
  try {
    const Netlist netlist = parse_bench_file(path, lib, parse_options);
    if (options.params.has_value()) {
      const int protected_ffs = core::protected_ff_count(netlist);
      if (protected_ffs >= 1) {
        options.tree = core::build_eqglb_tree(protected_ffs);
      }
    }
    report = lint::run_lint(netlist, options);
    lint::add_parse_issue_diagnostics(issues, report);

    // Under --hardened, additionally elaborate the full protected system
    // and check its per-FF protection structure (self-check of the
    // hardening transform's output).
    if (args.has("hardened") && netlist.num_flip_flops() > 0 &&
        !report.fails_at(lint::Severity::kError)) {
      const auto system = core::elaborate_hardened_system(netlist);
      lint::LintOptions system_options;
      system_options.hardened_structure = true;
      report.merge(lint::run_lint(system.netlist, system_options));
    }
  } catch (const Error& e) {
    report.design = path;
    lint::Diagnostic d;
    d.rule_id = "parse-error";
    d.severity = lint::Severity::kError;
    d.message = e.what();
    report.add(std::move(d));
  }

  std::cout << (args.has("json") ? lint::format_json(report)
                                 : lint::format_text(report));

  const std::string fail_on = args.text("fail-on", "error");
  if (fail_on != "error" && fail_on != "warn") {
    std::cerr << "lint: --fail-on expects 'warn' or 'error'\n";
    return 2;
  }
  const lint::Severity threshold = fail_on == "warn"
                                       ? lint::Severity::kWarning
                                       : lint::Severity::kError;
  return report.fails_at(threshold) ? 1 : 0;
}

int cmd_sta(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  const auto result = run_sta(netlist);
  std::cout << timing_report(netlist, result);
  const auto stats = netlist.stats();
  std::cout << "gates " << stats.num_gates << ", flip-flops "
            << stats.num_flip_flops << ", area "
            << stats.total_area.value() << " um^2\n";
  return 0;
}

int cmd_harden(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);

  const core::ProtectionParams params = params_from(args);
  const auto design = core::harden(netlist, params);
  std::cout << core::describe(design);
  if (args.has("areas")) {
    std::cout << '\n'
              << core::format_area_report(core::build_area_report(design));
  }
  if (args.has("skew")) {
    const Picoseconds skew{args.number("skew", 0.0)};
    std::cout << "with " << skew.value() << " ps clock skew, max glitch = "
              << core::max_protected_glitch(design.timing, params, skew)
                     .value()
              << " ps\n";
  }
  return 0;
}

int cmd_campaign(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  if (netlist.num_flip_flops() == 0) {
    std::cerr << "campaign requires a sequential design\n";
    return 1;
  }
  const auto params = core::ProtectionParams::q100();
  const auto sta = run_sta(netlist);
  const Picoseconds period =
      std::max(core::hardened_clock_period(sta.dmax, lib),
               core::min_clock_period_for_delta(params));

  const auto runs = static_cast<std::size_t>(args.number("runs", 50));
  set::StrikePlanOptions plan_options;
  plan_options.functional_strikes = runs;
  plan_options.cycles_per_run =
      static_cast<std::size_t>(args.number("cycles", 16));
  plan_options.glitch_width = Picoseconds(args.number("width", 400.0));
  plan_options.clock_period = period;
  if (args.has("adversarial")) {
    const std::size_t extra = std::max<std::size_t>(1, runs / 4);
    plan_options.protection_path_strikes = extra;
    plan_options.clock_edge_strikes = extra;
    plan_options.out_of_envelope_strikes = extra;
    plan_options.out_of_envelope_width =
        params.delta + Picoseconds(400.0);
  }

  campaign::EngineOptions engine_options;
  engine_options.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  engine_options.cycles_per_run = plan_options.cycles_per_run;
  engine_options.jobs =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.number("jobs", 1)));
  engine_options.timeout_ms = args.number("timeout-ms", 0.0);
  engine_options.journal_path = args.text("journal", "");
  if (args.has("resume")) {
    engine_options.journal_path = args.text("resume", "");
    engine_options.resume = true;
  }
  engine_options.minimize_escapes = args.has("minimize");
  engine_options.artifact_dir = args.text("artifacts", "");
  engine_options.stop_after =
      static_cast<std::size_t>(args.number("stop-after", 0));

  set::StrikePlan plan =
      set::build_strike_plan(netlist, plan_options, engine_options.seed);
  if (args.has("shard")) {
    const std::string spec = args.text("shard", "");
    const auto slash = spec.find('/');
    CWSP_REQUIRE_MSG(slash != std::string::npos,
                     "--shard expects <i>/<n>, got '" << spec << "'");
    const std::size_t index = std::stoull(spec.substr(0, slash));
    const std::size_t total = std::stoull(spec.substr(slash + 1));
    CWSP_REQUIRE_MSG(index >= 1 && index <= total,
                     "--shard index out of range in '" << spec << "'");
    plan = set::shard_plan(plan, total)[index - 1];
  }

  const campaign::CampaignEngine engine(netlist, params, period);
  const auto result = engine.run(plan, engine_options);

  if (args.has("json")) {
    std::cout << campaign::format_campaign_json(result, plan, netlist,
                                                engine_options, period);
  } else {
    std::cout << campaign::format_campaign_text(result, plan, netlist);
  }

  switch (campaign::campaign_status(result)) {
    case campaign::CampaignStatus::kOk:
      return 0;
    case campaign::CampaignStatus::kEscapes:
    case campaign::CampaignStatus::kInvalid:
      return 1;
    case campaign::CampaignStatus::kInterrupted:
      return 3;
  }
  return 1;
}

int cmd_replay(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const bool reproduced = campaign::replay_repro(args.positional[0], lib);
  std::cout << (reproduced ? "escape reproduced\n"
                           : "escape did NOT reproduce\n");
  return reproduced ? 0 : 1;
}

int cmd_glitch(const Args& args, const CellLibrary&) {
  const Femtocoulombs q{args.number("q", 100.0)};
  spice::SolverDiagnostics diagnostics;
  const auto wave = spice::strike_waveform(q, {}, 1500.0, &diagnostics);
  if (args.has("json")) {
    std::cout << "{\"q_fc\": " << q.value() << ", \"peak_v\": " << wave.peak()
              << ", \"width_ps\": "
              << wave.pulse_width_above(0.5).value_or(0.0)
              << ", \"diagnostics\": " << diagnostics.to_json() << "}\n";
    return 0;
  }
  std::cout << "Q = " << q.value() << " fC: peak "
            << TextTable::num(wave.peak(), 3) << " V, width above VDD/2 = "
            << TextTable::num(wave.pulse_width_above(0.5).value_or(0.0), 1)
            << " ps\n";
  TextTable t;
  t.set_header({"t (ps)", "V(out)"});
  for (double ts = 0.0; ts <= 1200.0; ts += 100.0) {
    t.add_row({TextTable::num(ts, 0), TextTable::num(wave.value_at(ts), 4)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_characterize(const Args& args, const CellLibrary& lib) {
  CharacterizeOptions options;
  options.load = Femtofarads(args.number("load", 2.0));
  if (args.has("max-newton")) {
    options.transient.max_newton_iterations =
        static_cast<int>(args.number("max-newton", 200.0));
  }
  options.include_cwsp = !args.has("no-cwsp");
  const auto report = characterize_library(lib, options);
  std::cout << (args.has("json") ? report.to_json() : report.to_text());
  if (report.any_fallback()) {
    std::cerr << "characterize: " << report.fallback_count()
              << " arc(s) degraded to the calibrated model\n";
  }
  return 0;
}

int cmd_elaborate(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const int n = std::stoi(args.positional[0]);
  const auto p = core::elaborate_protection(n, lib);
  if (args.has("dot")) {
    write_dot(p.netlist, std::cout);
  } else {
    write_bench(p.netlist, std::cout);
  }
  std::cerr << "elaborated checker for " << n << " FFs: "
            << p.netlist.num_gates() << " gates, "
            << p.netlist.num_flip_flops() << " flip-flops, EQGLB tree "
            << p.tree.levels << " level(s)\n";
  return 0;
}

int cmd_verilog(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  write_verilog(netlist, std::cout);
  return 0;
}

int cmd_optimize(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  const auto [optimized, stats] = optimize(netlist);
  std::cerr << "removed " << stats.removed() << " of " << stats.gates_before
            << " gates\n";
  write_bench(optimized, std::cout);
  return 0;
}

int cmd_stats(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  const auto s = netlist.stats();
  const auto depth = compute_logic_depth(netlist);
  const auto fanout = compute_fanout_stats(netlist);
  std::cout << "gates        : " << s.num_gates << "\n";
  std::cout << "flip-flops   : " << s.num_flip_flops << "\n";
  std::cout << "inputs/outputs: " << s.num_primary_inputs << " / "
            << s.num_primary_outputs << "\n";
  std::cout << "area         : " << s.total_area.value() << " um^2\n";
  std::cout << "logic depth  : " << depth.max_depth << " levels\n";
  std::cout << "max/mean fanout: " << fanout.max_fanout << " / "
            << fanout.mean_fanout << "\n";
  std::cout << "cell mix     :";
  for (const auto& kc : kind_histogram(netlist)) {
    std::cout << ' ' << kc.cell_name << 'x' << kc.count;
  }
  std::cout << '\n';
  return 0;
}

int cmd_ser(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  const auto params = core::ProtectionParams::q100();
  const auto design = core::harden(netlist, params);

  set::SerAnalyzer analyzer;
  const double fail_fraction = args.number("fail", 0.2);
  const auto report = analyzer.analyze(design.hardened_area,
                                       design.max_glitch, fail_fraction);
  std::cout << "strikes/year            : " << report.strikes_per_year
            << "\n";
  std::cout << "unprotected errors/year : "
            << report.unprotected_errors_per_year << "\n";
  std::cout << "hardened errors/year    : "
            << report.hardened_errors_per_year << "\n";
  std::cout << "MTBF improvement        : " << report.improvement_factor
            << "x\n";
  std::cout << "double-strike prob/cycle: "
            << analyzer.consecutive_cycle_strike_probability(
                   design.hardened_area, design.hardened_period)
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_cli_args(argc, argv);
  const CellLibrary lib = make_default_library();

  try {
    if (command == "sta") return cmd_sta(args, lib);
    if (command == "harden") return cmd_harden(args, lib);
    if (command == "lint") return cmd_lint(args, lib);
    if (command == "campaign") return cmd_campaign(args, lib);
    if (command == "replay") return cmd_replay(args, lib);
    if (command == "glitch") return cmd_glitch(args, lib);
    if (command == "characterize") return cmd_characterize(args, lib);
    if (command == "elaborate") return cmd_elaborate(args, lib);
    if (command == "ser") return cmd_ser(args, lib);
    if (command == "verilog") return cmd_verilog(args, lib);
    if (command == "optimize") return cmd_optimize(args, lib);
    if (command == "stats") return cmd_stats(args, lib);
  } catch (const cwsp::ParseError& e) {
    std::cerr << "parse error: " << e.what() << '\n';
    return 2;
  } catch (const cwsp::SolveError& e) {
    std::cerr << "solver error: " << e.what() << '\n';
    return 3;
  } catch (const cwsp::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << '\n';
    return 4;
  }
  return usage();
}
