// cwsp_tool — command-line front end to the library.
//
// Run `cwsp_tool help` for the subcommand list and `cwsp_tool help <cmd>`
// for per-command options; both are generated from the kSubcommands table
// below, which is the single registry of (name, one-line help, option
// help, handler).
//
// `sta`, `lint`, `campaign`, `coverage` and `certify` execute through
// the same src/service handlers the resident analysis server uses, so
// one-shot stdout and a service response payload are byte-identical by
// construction (docs/service.md).
//
// Exit codes: 0 success, 1 findings (lint failures, campaign escapes,
// failed replay), 2 usage/parse errors, 3 solver failures (also: campaign
// interrupted via --stop-after), 4 internal errors. Errors print to
// stderr, never stdout.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/minimize.hpp"
#include "campaign/report.hpp"
#include "cell/characterize.hpp"
#include "common/cli_args.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "fabric/coordinator.hpp"
#include "cwsp/area_report.hpp"
#include "cwsp/coverage.hpp"
#include "cwsp/elaborate.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"
#include "lint/lint.hpp"
#include "netlist/analysis.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/transform.hpp"
#include "netlist/verilog_writer.hpp"
#include "netlist/writer.hpp"
#include "service/client.hpp"
#include "sim/strike_lanes.hpp"
#include "service/handlers.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "set/ser.hpp"
#include "spice/subckt.hpp"
#include "sta/sta.hpp"

namespace {

using namespace cwsp;
using Args = cwsp::CliArgs;

struct Subcommand {
  const char* name;
  /// One positional-arguments hint for the usage line, e.g. "<design.bench>".
  const char* operands;
  /// One-line summary shown in the generated usage listing.
  const char* brief;
  /// Option details shown by `cwsp_tool help <name>` (may be empty).
  const char* options;
  int (*handler)(const Args&, const CellLibrary&);
};

const std::vector<Subcommand>& subcommands();

int usage() {
  std::cerr << "usage: cwsp_tool <subcommand> [options]\n\nsubcommands:\n";
  for (const Subcommand& cmd : subcommands()) {
    std::cerr << "  " << cmd.name;
    if (cmd.operands[0] != '\0') std::cerr << ' ' << cmd.operands;
    std::cerr << "\n      " << cmd.brief << '\n';
  }
  std::cerr << "\nrun `cwsp_tool help <subcommand>` for options\n";
  return 2;
}

core::ProtectionParams params_from(const Args& args) {
  if (args.has("delta")) {
    return core::ProtectionParams::for_glitch_width(
        Picoseconds(args.number("delta", 500.0)));
  }
  return args.has("q150") ? core::ProtectionParams::q150()
                          : core::ProtectionParams::q100();
}

int cmd_lint(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();

  const std::string fail_on = args.text("fail-on", "error");
  if (fail_on != "error" && fail_on != "warn") {
    std::cerr << "lint: --fail-on expects 'warn' or 'error'\n";
    return 2;
  }

  service::LintSpec spec;
  spec.path = args.positional[0];
  spec.hardened = args.has("hardened");
  spec.q150 = args.has("q150");
  if (args.has("delta")) spec.delta_ps = args.number("delta", 500.0);
  spec.skew_ps = args.number("skew", 0.0);
  if (args.has("period")) spec.period_ps = args.number("period", 0.0);
  if (args.has("fallback-cells")) {
    // Comma-separated cell names whose characterization fell back to the
    // calibrated model (from `characterize --json`).
    std::string list = args.text("fallback-cells", "");
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string cell = list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!cell.empty()) spec.fallback_cells.push_back(cell);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  spec.json = args.has("json");
  spec.fail_threshold = fail_on == "warn" ? lint::Severity::kWarning
                                          : lint::Severity::kError;
  spec.certify = args.has("certify");
  if (spec.certify && !spec.hardened) {
    std::cerr << "lint: --certify requires --hardened\n";
    return 2;
  }
  spec.certify_envelope_ps = args.number("env-width", 0.0);
  spec.certify_seed =
      static_cast<std::uint64_t>(args.number("certify-seed", 1));
  spec.scheme = args.text("scheme", "");
  spec.baseline_path = args.text("baseline", "");

  const service::LintOutcome outcome = service::run_lint(spec, lib);
  // The note goes to stderr so --json stdout stays parseable.
  if (!outcome.baseline_note.empty()) {
    std::cerr << outcome.baseline_note << '\n';
  }
  std::cout << outcome.output;
  if (outcome.parse_failed) return 2;
  return outcome.failed ? 1 : 0;
}

int cmd_sta(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto session = service::load_design_session(args.positional[0], lib);
  std::cout << service::run_sta_report(*session);
  return 0;
}

int cmd_harden(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);

  const core::ProtectionParams params = params_from(args);
  const auto design = core::harden(netlist, params);
  std::cout << core::describe(design);
  if (args.has("areas")) {
    std::cout << '\n'
              << core::format_area_report(core::build_area_report(design));
  }
  if (args.has("skew")) {
    const Picoseconds skew{args.number("skew", 0.0)};
    std::cout << "with " << skew.value() << " ps clock skew, max glitch = "
              << core::max_protected_glitch(design.timing, params, skew)
                     .value()
              << " ps\n";
  }
  return 0;
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> items;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string item = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) items.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return items;
}

void maybe_dump_metrics(const Args& args) {
  const std::string path = args.text("metrics-json", "");
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot write metrics dump to '" << path << "'\n";
    return;
  }
  out << metrics::Registry::global().to_json();
}

int campaign_exit_code(campaign::CampaignStatus status) {
  switch (status) {
    case campaign::CampaignStatus::kOk:
      return 0;
    case campaign::CampaignStatus::kEscapes:
    case campaign::CampaignStatus::kInvalid:
      return 1;
    case campaign::CampaignStatus::kInterrupted:
      return 3;
  }
  return 1;
}

int cmd_campaign(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto session = service::load_design_session(args.positional[0], lib);
  if (session->netlist->num_flip_flops() == 0) {
    std::cerr << "campaign requires a sequential design\n";
    return 1;
  }

  service::CampaignSpec spec;
  spec.runs = static_cast<std::size_t>(args.number("runs", 50));
  spec.cycles = static_cast<std::size_t>(args.number("cycles", 16));
  spec.width_ps = args.number("width", 400.0);
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  spec.jobs =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.number("jobs", 1)));
  spec.timeout_ms = args.number("timeout-ms", 0.0);
  spec.adversarial = args.has("adversarial");
  spec.json = args.has("json");
  spec.journal_path = args.text("journal", "");
  if (args.has("resume")) {
    spec.journal_path = args.text("resume", "");
    spec.resume = true;
  }
  spec.minimize_escapes = args.has("minimize");
  spec.artifact_dir = args.text("artifacts", "");
  spec.stop_after =
      static_cast<std::size_t>(args.number("stop-after", 0));
  spec.deadline_ms = args.number("deadline-ms", 0.0);
  spec.schemes = split_list(args.text("scheme", ""));
  spec.fault_models = split_list(args.text("fault-model", ""));
  if (args.has("shard")) {
    const std::string shard = args.text("shard", "");
    const auto slash = shard.find('/');
    CWSP_REQUIRE_MSG(slash != std::string::npos,
                     "--shard expects <i>/<n>, got '" << shard << "'");
    spec.shard_index = std::stoull(shard.substr(0, slash));
    spec.shard_total = std::stoull(shard.substr(slash + 1));
    CWSP_REQUIRE_MSG(
        spec.shard_index >= 1 && spec.shard_index <= spec.shard_total,
        "--shard index out of range in '" << shard << "'");
  }

  // Distributed mode: fan shards out to worker daemons (and/or recover a
  // crashed coordinator from its fabric journal). The merged report is
  // byte-identical to the local path below, so both share the exit map.
  if (args.has("workers") || args.has("fabric-journal") ||
      args.has("fabric-resume")) {
    fabric::FabricOptions fabric_options;
    fabric_options.workers = split_list(args.text("workers", ""));
    fabric_options.shards =
        static_cast<std::size_t>(args.number("fabric-shards", 0));
    fabric_options.lease_ms = args.number("lease-ms", 60'000.0);
    fabric_options.journal_path = args.text("fabric-journal", "");
    if (args.has("fabric-resume")) {
      fabric_options.journal_path = args.text("fabric-resume", "");
      fabric_options.resume = true;
    }
    fabric_options.stop_after_shards =
        static_cast<std::size_t>(args.number("stop-after-shards", 0));
    fabric_options.auth_token = args.text("auth-token", "");
    fabric_options.deadline_ms = spec.deadline_ms;
    fabric_options.log = &std::cerr;

    const fabric::FabricOutcome outcome = fabric::run_distributed_campaign(
        *session, service::read_design_file(args.positional[0]), spec,
        fabric_options);
    const fabric::FabricStats& stats = outcome.stats;
    std::cerr << "fabric: " << stats.shards_total << " shard(s): "
              << stats.shards_resumed << " resumed, " << stats.shards_remote
              << " remote, " << stats.shards_local << " local; "
              << stats.redispatched << " re-dispatched, " << stats.rejected
              << " rejected, " << stats.workers_evicted << " evicted\n";
    maybe_dump_metrics(args);
    std::cout << outcome.outcome.output;
    return campaign_exit_code(outcome.outcome.status);
  }

  // A local --deadline-ms rides the same CancelToken path the service
  // uses: the engine polls between strikes and reports kInterrupted once
  // the budget expires.
  sim::CancelToken budget_token;
  const sim::CancelToken* cancel = nullptr;
  if (spec.deadline_ms > 0.0) {
    budget_token.set_deadline(Stopwatch::deadline_after(spec.deadline_ms));
    cancel = &budget_token;
  }
  const service::CampaignOutcome outcome =
      service::run_campaign(*session, spec, cancel);
  maybe_dump_metrics(args);
  std::cout << outcome.output;
  return campaign_exit_code(outcome.status);
}

int cmd_coverage(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto session = service::load_design_session(args.positional[0], lib);

  service::CoverageSpec spec;
  spec.runs = static_cast<std::size_t>(args.number("runs", 50));
  spec.cycles = static_cast<std::size_t>(args.number("cycles", 20));
  spec.width_ps = args.number("width", 400.0);
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  spec.scenarios = args.has("scenarios");
  spec.json = args.has("json");

  const service::CoverageOutcome outcome =
      service::run_coverage(*session, spec);
  std::cout << outcome.output;
  return outcome.valid ? 0 : 1;
}

int cmd_certify(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto session = service::load_design_session(args.positional[0], lib);

  service::CertifySpec spec;
  spec.q150 = args.has("q150");
  if (args.has("delta")) spec.delta_ps = args.number("delta", 500.0);
  spec.skew_ps = args.number("skew", 0.0);
  spec.envelope_ps = args.number("env-width", 0.0);
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  spec.json = args.has("json");
  spec.scheme = args.text("scheme", "");
  spec.artifact_dir = args.text("artifacts", "");

  const service::CertifyOutcome outcome =
      service::run_certify(*session, spec);
  std::cout << outcome.output;
  if (outcome.escapes > 0) return 1;
  if (args.has("strict") && outcome.unknowns > 0) return 1;
  return 0;
}

int cmd_compare(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto session = service::load_design_session(args.positional[0], lib);

  service::CompareSpec spec;
  spec.runs = static_cast<std::size_t>(args.number("runs", 50));
  spec.cycles = static_cast<std::size_t>(args.number("cycles", 16));
  spec.width_ps = args.number("width", 400.0);
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  spec.jobs =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.number("jobs", 1)));
  spec.schemes = split_list(args.text("scheme", ""));
  spec.fault_models = split_list(args.text("fault-model", ""));
  spec.json = args.has("json");

  const service::CompareOutcome outcome =
      service::run_compare(*session, spec);
  maybe_dump_metrics(args);
  std::cout << outcome.output;
  return outcome.unexpected_escapes > 0 ? 1 : 0;
}

// The resident server, reachable by the signal handler (signal() only
// takes a plain function pointer).
cwsp::service::Server* g_server = nullptr;

void handle_stop_signal(int) {
  // request_shutdown only swaps an atomic and write()s a pipe byte — both
  // async-signal-safe.
  if (g_server != nullptr) g_server->request_shutdown();
}

int cmd_serve(const Args& args, const CellLibrary& lib) {
  service::ServerOptions options;
  options.socket_path = args.text("socket", "");
  if (options.socket_path.empty()) {
    std::cerr << "serve: --socket <path> is required\n";
    return 2;
  }
  options.workers = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.number("workers", 2)));
  options.queue_capacity = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.number("queue-capacity", 64)));
  options.cache.max_entries = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.number("cache-entries", 8)));
  options.cache.max_bytes =
      static_cast<std::size_t>(args.number("cache-mb", 256.0) * 1024.0 *
                               1024.0);
  options.result_cache_entries =
      static_cast<std::size_t>(args.number("result-cache", 64));
  options.metrics_json_path = args.text("metrics-json", "");
  options.tcp_endpoint = args.text("tcp", "");
  options.max_frame_bytes = static_cast<std::size_t>(
      args.number("max-frame-mb", 8.0) * 1024.0 * 1024.0);
  options.worker_ttl_ms = args.number("worker-ttl-ms", 15'000.0);
  options.register_with = args.text("register", "");
  options.advertise_endpoint = args.text("advertise", "");
  options.auth_token = args.text("auth-token", "");
  options.drain_grace_ms = args.number("drain-grace-ms", 5'000.0);
  if (args.has("failpoints")) {
    failpoint::Registry::global().configure(
        args.text("failpoints", ""),
        static_cast<std::uint64_t>(args.number("failpoints-seed", 1)));
  }
  // Campaigns with "distribute":true fan out to the workers registered
  // with this coordinator; everything else runs in-process as before.
  // The fabric inherits the serve auth token (one shared secret across
  // the topology) and the request's deadline budget.
  const double lease_ms = args.number("lease-ms", 60'000.0);
  const std::string fabric_auth = options.auth_token;
  options.distributed_campaign =
      [lease_ms, fabric_auth](const service::DesignSession& session,
                              const std::string& design_text,
                              const service::CampaignSpec& spec,
                              const std::vector<std::string>& workers) {
        fabric::FabricOptions fabric_options;
        fabric_options.workers = workers;
        fabric_options.lease_ms = lease_ms;
        fabric_options.auth_token = fabric_auth;
        fabric_options.deadline_ms = spec.deadline_ms;
        return fabric::run_distributed_campaign(session, design_text, spec,
                                                fabric_options)
            .outcome;
      };
  const std::string tcp_note =
      options.tcp_endpoint.empty() ? "" : " and tcp " + options.tcp_endpoint;

  service::Server server(std::move(options), lib);
  g_server = &server;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::cerr << "serving on " << server.socket_path() << tcp_note << '\n';
  server.run();
  g_server = nullptr;
  return 0;
}

int cmd_client(const Args& args, const CellLibrary&) {
  const std::string socket_path = args.text("socket", "");
  if (socket_path.empty()) {
    std::cerr << "client: --socket <path> is required\n";
    return 2;
  }
  const bool payloads_only = args.has("payloads");

  std::vector<std::string> lines = args.positional;
  // `--payloads` is a flag, but the generic parser hands it the next
  // token as a value; when that token is a request line, reclaim it.
  const std::string reclaimed = args.text("payloads", "");
  if (!reclaimed.empty() && reclaimed.front() == '{') {
    lines.insert(lines.begin(), reclaimed);
  }
  if (lines.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) lines.push_back(line);
    }
  }
  if (lines.empty()) {
    std::cerr << "client: no request lines (argv or stdin)\n";
    return 2;
  }

  // Assign ids c1..cN to requests that lack one, so responses (which may
  // arrive out of order — batching, priorities) can be demuxed back into
  // request order.
  const std::string auth_token = args.text("auth-token", "");
  std::vector<std::string> ids;
  ids.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const service::json::Value request = service::json::parse(lines[i]);
    if (!request.is_object()) {
      throw ParseError("request " + std::to_string(i + 1) +
                       " is not a JSON object");
    }
    if (!auth_token.empty() && request.text("auth", "").empty()) {
      std::string field("\"auth\":\"");
      field += service::json::escape(auth_token);
      field += '"';
      if (!request.as_object().empty()) field += ',';
      const std::size_t brace = lines[i].find('{');
      if (brace != std::string::npos) lines[i].insert(brace + 1, field);
    }
    std::string id = request.text("id", "");
    if (id.empty()) {
      std::string generated("c");
      generated += std::to_string(i + 1);
      std::string field("\"id\":\"");
      field += generated;
      field += '"';
      if (!request.as_object().empty()) field += ',';
      const std::size_t brace = lines[i].find('{');
      if (brace != std::string::npos) lines[i].insert(brace + 1, field);
      id = std::move(generated);
    }
    ids.push_back(std::move(id));
  }

  service::Client client(socket_path);
  for (const std::string& line : lines) client.send_line(line);

  std::map<std::string, std::string> responses;
  std::string line;
  while (responses.size() < ids.size() && client.read_line(line)) {
    const service::json::Value response = service::json::parse(line);
    responses[response.text("id", "")] = line;
  }

  bool all_ok = true;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it = responses.find(ids[i]);
    if (it == responses.end()) {
      std::cerr << "client: no response for request " << ids[i]
                << " (server closed the connection)\n";
      return 4;
    }
    const service::json::Value response = service::json::parse(it->second);
    if (!response.boolean("ok", false)) all_ok = false;
    if (payloads_only) {
      if (const auto* payload = response.find("payload")) {
        std::cout << payload->as_string();
      }
    } else {
      std::cout << it->second << '\n';
    }
  }
  return all_ok ? 0 : 1;
}

int cmd_replay(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const bool reproduced = campaign::replay_repro(args.positional[0], lib);
  std::cout << (reproduced ? "escape reproduced\n"
                           : "escape did NOT reproduce\n");
  return reproduced ? 0 : 1;
}

int cmd_glitch(const Args& args, const CellLibrary&) {
  const Femtocoulombs q{args.number("q", 100.0)};
  spice::SolverDiagnostics diagnostics;
  const auto wave = spice::strike_waveform(q, {}, 1500.0, &diagnostics);
  if (args.has("json")) {
    std::cout << "{\"q_fc\": " << q.value() << ", \"peak_v\": " << wave.peak()
              << ", \"width_ps\": "
              << wave.pulse_width_above(0.5).value_or(0.0)
              << ", \"diagnostics\": " << diagnostics.to_json() << "}\n";
    return 0;
  }
  std::cout << "Q = " << q.value() << " fC: peak "
            << TextTable::num(wave.peak(), 3) << " V, width above VDD/2 = "
            << TextTable::num(wave.pulse_width_above(0.5).value_or(0.0), 1)
            << " ps\n";
  TextTable t;
  t.set_header({"t (ps)", "V(out)"});
  for (double ts = 0.0; ts <= 1200.0; ts += 100.0) {
    t.add_row({TextTable::num(ts, 0), TextTable::num(wave.value_at(ts), 4)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_characterize(const Args& args, const CellLibrary& lib) {
  CharacterizeOptions options;
  options.load = Femtofarads(args.number("load", 2.0));
  if (args.has("max-newton")) {
    options.transient.max_newton_iterations =
        static_cast<int>(args.number("max-newton", 200.0));
  }
  options.include_cwsp = !args.has("no-cwsp");
  const auto report = characterize_library(lib, options);
  std::cout << (args.has("json") ? report.to_json() : report.to_text());
  if (report.any_fallback()) {
    std::cerr << "characterize: " << report.fallback_count()
              << " arc(s) degraded to the calibrated model\n";
  }
  return 0;
}

int cmd_elaborate(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const int n = std::stoi(args.positional[0]);
  const auto p = core::elaborate_protection(n, lib);
  if (args.has("dot")) {
    write_dot(p.netlist, std::cout);
  } else {
    write_bench(p.netlist, std::cout);
  }
  std::cerr << "elaborated checker for " << n << " FFs: "
            << p.netlist.num_gates() << " gates, "
            << p.netlist.num_flip_flops() << " flip-flops, EQGLB tree "
            << p.tree.levels << " level(s)\n";
  return 0;
}

int cmd_verilog(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  write_verilog(netlist, std::cout);
  return 0;
}

int cmd_optimize(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  const auto [optimized, stats] = optimize(netlist);
  std::cerr << "removed " << stats.removed() << " of " << stats.gates_before
            << " gates\n";
  write_bench(optimized, std::cout);
  return 0;
}

int cmd_stats(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  const auto s = netlist.stats();
  const auto depth = compute_logic_depth(netlist);
  const auto fanout = compute_fanout_stats(netlist);
  std::cout << "gates        : " << s.num_gates << "\n";
  std::cout << "flip-flops   : " << s.num_flip_flops << "\n";
  std::cout << "inputs/outputs: " << s.num_primary_inputs << " / "
            << s.num_primary_outputs << "\n";
  std::cout << "area         : " << s.total_area.value() << " um^2\n";
  std::cout << "logic depth  : " << depth.max_depth << " levels\n";
  std::cout << "max/mean fanout: " << fanout.max_fanout << " / "
            << fanout.mean_fanout << "\n";
  std::cout << "cell mix     :";
  for (const auto& kc : kind_histogram(netlist)) {
    std::cout << ' ' << kc.cell_name << 'x' << kc.count;
  }
  std::cout << '\n';
  return 0;
}

int cmd_ser(const Args& args, const CellLibrary& lib) {
  if (args.positional.empty()) return usage();
  const auto netlist = parse_bench_file(args.positional[0], lib);
  const auto params = core::ProtectionParams::q100();
  const auto design = core::harden(netlist, params);

  set::SerAnalyzer analyzer;
  const double fail_fraction = args.number("fail", 0.2);
  const auto report = analyzer.analyze(design.hardened_area,
                                       design.max_glitch, fail_fraction);
  std::cout << "strikes/year            : " << report.strikes_per_year
            << "\n";
  std::cout << "unprotected errors/year : "
            << report.unprotected_errors_per_year << "\n";
  std::cout << "hardened errors/year    : "
            << report.hardened_errors_per_year << "\n";
  std::cout << "MTBF improvement        : " << report.improvement_factor
            << "x\n";
  std::cout << "double-strike prob/cycle: "
            << analyzer.consecutive_cycle_strike_probability(
                   design.hardened_area, design.hardened_period)
            << "\n";
  return 0;
}

int cmd_version(const Args& args, const CellLibrary&) {
  const sim::LaneIsa isa = sim::WideLogicSim::dispatched_isa();
  auto& width_gauge = metrics::Registry::global().gauge("sim.kernel.width");
  width_gauge.set(static_cast<std::int64_t>(isa.lanes));
  const auto& supported = sim::WideLogicSim::supported_lane_widths();
  const auto accelerated = sim::WideLogicSim::accelerated_lane_widths();
  if (args.has("json")) {
    std::cout << "{\"schema\":\"cwsp-version-v1\",\"tool\":\"cwsp_tool\","
              << "\"project\":\"cwsp_rad_hard\",\"kernel\":{\"isa\":\""
              << isa.name << "\",\"lanes\":" << isa.lanes
              << ",\"supported_widths\":[";
    for (std::size_t i = 0; i < supported.size(); ++i) {
      if (i != 0) std::cout << ',';
      std::cout << supported[i];
    }
    std::cout << "],\"accelerated_widths\":[";
    for (std::size_t i = 0; i < accelerated.size(); ++i) {
      if (i != 0) std::cout << ',';
      std::cout << accelerated[i];
    }
    std::cout << "]},\"metrics\":{\"sim.kernel.width\":"
              << width_gauge.value() << "}}\n";
    return 0;
  }
  std::cout << "cwsp_tool (cwsp_rad_hard)\n";
  std::cout << "strike-lane kernel : " << isa.name << " (" << isa.lanes
            << " lanes)\n";
  std::cout << "supported widths   :";
  for (std::size_t w : supported) std::cout << ' ' << w;
  std::cout << "\naccelerated widths :";
  if (accelerated.empty()) std::cout << " none (portable sweeps only)";
  for (std::size_t w : accelerated) std::cout << ' ' << w;
  std::cout << "\nsim.kernel.width   : " << width_gauge.value() << "\n";
  return 0;
}

const std::vector<Subcommand>& subcommands() {
  static const std::vector<Subcommand> kSubcommands = {
      {"sta", "<design.bench>", "static timing report", "", cmd_sta},
      {"harden", "<design.bench>", "hardening report (Table-2/3 numbers)",
       "  --q150            use the Q=150 fC envelope (default Q=100 fC)\n"
       "  --delta <ps>      custom glitch width (Table-3 mode)\n"
       "  --skew <ps>       clock skew derating\n"
       "  --areas           itemised protection-area breakdown\n",
       cmd_harden},
      {"lint", "<design.bench>", "design-rule check",
       "  --hardened        also check the protection invariants: Eq. 5\n"
       "                    envelope, CLK_DEL fit, EQGLB-tree bounds, and\n"
       "                    (for sequential designs) the elaborated\n"
       "                    hardened system's per-FF structure\n"
       "  --json            machine-readable report (docs/lint.md schema)\n"
       "  --fallback-cells <a,b,...>  cells with calibrated-fallback delay\n"
       "                    arcs (from `characterize --json`)\n"
       "  --fail-on <warn|error>  exit-1 threshold (default error)\n"
       "  --certify         also run the certify rule family (requires\n"
       "                    --hardened; see `cwsp_tool certify`)\n"
       "  --env-width <ps> / --certify-seed <n>  certify configuration\n"
       "  --baseline <path> absent: record current findings there;\n"
       "                    present: fail only on findings not in it\n"
       "  --scheme <name>   target scheme under --hardened (default cwsp);\n"
       "                    non-CWSP schemes skip the CWSP structural\n"
       "                    invariants and warn instead\n"
       "  --q150 / --delta <ps> / --skew <ps> / --period <ps>\n"
       "                    protection configuration under --hardened\n",
       cmd_lint},
      {"campaign", "<design.bench>", "fault-injection campaign",
       "  --runs <n> --cycles <n> --width <ps> --seed <n>\n"
       "  --jobs <n>        worker threads (reports identical for any n)\n"
       "  --timeout-ms <v>  per-strike budget (hang -> inconclusive)\n"
       "  --journal <path>  checkpoint file, one line per finished strike\n"
       "  --resume <path>   resume an interrupted campaign from its journal\n"
       "  --adversarial     add protection-path / clock-edge /\n"
       "                    out-of-envelope strike classes to the plan\n"
       "  --minimize        shrink escapes to minimal repros\n"
       "  --artifacts <dir> write repro .bench + .strike files there\n"
       "  --shard <i>/<n>   run only shard i (1-based) of an n-way split\n"
       "  --stop-after <n>  stop after n fresh strikes (exit 3)\n"
       "  --deadline-ms <v> wall-clock budget; an exceeded budget reports\n"
       "                    kInterrupted (exit 3), local or distributed\n"
       "  --scheme <a,b,...>      protection scheme(s) to campaign\n"
       "                    (cwsp, tmr, loco; default cwsp); more than one\n"
       "                    name sweeps the cross product\n"
       "  --fault-model <a,b,...> strike generator(s) (single-set,\n"
       "                    double-set, protection-seu; default single-set)\n"
       "  --json            machine-readable report (docs/campaign.md)\n"
       "  distributed fabric (docs/fabric.md; report byte-identical):\n"
       "  --workers <a,b,...>    worker endpoints (host:port or socket)\n"
       "  --fabric-shards <n>    shard count (default 4 x workers)\n"
       "  --lease-ms <v>         per-shard lease before re-dispatch\n"
       "  --fabric-journal <path>   coordinator crash-recovery journal\n"
       "  --fabric-resume <path>    resume a crashed coordinator from it\n"
       "  --stop-after-shards <n>   stop after n fresh shards (exit 3)\n"
       "  --auth-token <tok>        shared secret sent to fabric workers\n"
       "  --metrics-json <path>     write the fabric metrics dump here\n",
       cmd_campaign},
      {"coverage", "<design.bench>", "functional/scenario coverage sweep",
       "  --runs <n> --cycles <n> --width <ps> --seed <n>\n"
       "  --scenarios       sweep the scenario classes instead of random\n"
       "                    functional strikes\n"
       "  --json            machine-readable report\n",
       cmd_coverage},
      {"certify", "<design.bench>",
       "static SET-coverage certificate per strike site",
       "  --q150            use the Q=150 fC envelope (default Q=100 fC)\n"
       "  --delta <ps>      custom designed glitch width\n"
       "  --skew <ps>       clock skew derating\n"
       "  --env-width <ps>  glitch width to certify against (default: the\n"
       "                    configured delta)\n"
       "  --seed <n>        stimulus seed for the simulation fallback\n"
       "  --artifacts <dir> write escape repro .bench + .strike files there\n"
       "  --strict          unknown verdicts also exit 1 (default: only\n"
       "                    proved escapes do)\n"
       "  --scheme <name>   scheme whose predicate is certified (default\n"
       "                    cwsp); non-certifiable schemes degrade every\n"
       "                    site to `unknown`, never a silent pass\n"
       "  --json            machine-readable report (docs/certify.md)\n",
       cmd_certify},
      {"compare", "<design.bench>",
       "comparative Tables 1-4 across schemes x fault models",
       "  --runs <n> --cycles <n> --width <ps> --seed <n> --jobs <n>\n"
       "  --scheme <a,b,...>      schemes to compare (default: all)\n"
       "  --fault-model <a,b,...> fault models to compare (default: all)\n"
       "  --json            machine-readable report (cwsp-compare-v1,\n"
       "                    docs/schemes.md)\n",
       cmd_compare},
      {"serve", "--socket <path>", "resident analysis server (NDJSON)",
       "  --socket <path>   Unix domain socket to listen on (required)\n"
       "  --workers <n>     job worker threads (default 2)\n"
       "  --queue-capacity <n>  job queue bound (default 64)\n"
       "  --cache-entries <n>   design session cache entries (default 8)\n"
       "  --cache-mb <n>    design session cache memory bound (default 256)\n"
       "  --result-cache <n>    memoized responses kept (default 64)\n"
       "  --metrics-json <path> write the metrics dump here on shutdown\n"
       "  --tcp <host:port> also listen on TCP (port 0 = ephemeral) --\n"
       "                    the campaign-fabric transport (docs/fabric.md)\n"
       "  --max-frame-mb <n>    request frame size limit (default 8)\n"
       "  --register <endpoint> announce this daemon to a coordinator's\n"
       "                    worker registry (implies worker role)\n"
       "  --advertise <endpoint> endpoint to announce (default\n"
       "                    127.0.0.1:<tcp port>)\n"
       "  --worker-ttl-ms <v>   registry liveness window (default 15000)\n"
       "  --lease-ms <v>    per-shard lease for distributed campaigns\n"
       "  --auth-token <tok>    shared secret required of TCP clients\n"
       "                    (ping exempt; also sent with --register)\n"
       "  --drain-grace-ms <v>  SIGTERM drain budget before in-flight\n"
       "                    jobs are cancelled (default 5000; <=0 waits)\n"
       "  --failpoints <spec>   arm deterministic failpoints\n"
       "                    (docs/chaos.md grammar; also CWSP_FAILPOINTS)\n"
       "  --failpoints-seed <n> seed for prob= trigger policies\n",
       cmd_serve},
      {"client", "--socket <path> [request...]",
       "submit NDJSON requests to a running server",
       "  --socket <path>   server socket (required)\n"
       "  --payloads        print unescaped payloads only (byte-identical\n"
       "                    to the one-shot subcommand's stdout)\n"
       "  --auth-token <tok>  add an \"auth\" field to requests lacking one\n"
       "  request lines come from argv or, when absent, stdin\n",
       cmd_client},
      {"replay", "<repro.strike>", "replay a minimized escape", "",
       cmd_replay},
      {"glitch", "", "struck-inverter waveform",
       "  --q <fC>          deposited charge (default 100)\n"
       "  --json            waveform summary + solver diagnostics\n"
       "                    (docs/minispice.md schema)\n",
       cmd_glitch},
      {"characterize", "", "electrical cell characterization",
       "  --json            machine-readable report with per-arc provenance\n"
       "  --load <fF>       output load (default 2 fF)\n"
       "  --max-newton <n>  Newton iteration budget (small values provoke\n"
       "                    calibrated-fallback arcs)\n"
       "  --no-cwsp         skip the CWSP element arcs\n",
       cmd_characterize},
      {"elaborate", "<n_ffs>", "checker netlist (.bench/.dot)",
       "  --dot             emit graphviz instead of .bench\n", cmd_elaborate},
      {"ser", "<design.bench>", "soft-error-rate estimate",
       "  --fail <frac>     fraction of strikes that corrupt state\n",
       cmd_ser},
      {"verilog", "<design.bench>", "emit structural Verilog", "",
       cmd_verilog},
      {"optimize", "<design.bench>", "constant-fold + dead-gate removal", "",
       cmd_optimize},
      {"stats", "<design.bench>", "netlist statistics", "", cmd_stats},
      {"version", "", "build + strike-lane kernel dispatch info",
       "  --json            machine-readable version report\n",
       cmd_version},
  };
  return kSubcommands;
}

int cmd_help(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 0;  // asked-for help is not a usage error
  }
  const std::string name = argv[2];
  for (const Subcommand& cmd : subcommands()) {
    if (name != cmd.name) continue;
    std::cerr << "usage: cwsp_tool " << cmd.name;
    if (cmd.operands[0] != '\0') std::cerr << ' ' << cmd.operands;
    std::cerr << "\n  " << cmd.brief << '\n';
    if (cmd.options[0] != '\0') std::cerr << '\n' << cmd.options;
    return 0;
  }
  std::cerr << "unknown subcommand '" << name << "'\n";
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return cmd_help(argc, argv);
  }

  const Args args = parse_cli_args(argc, argv);
  const CellLibrary lib = make_default_library();

  try {
    // Deterministic fault injection (docs/chaos.md): CWSP_FAILPOINTS
    // holds a spec like "campaign.journal.append=torn:4@every=3";
    // CWSP_FAILPOINTS_SEED seeds the prob= policies (default 1).
    if (const char* spec = std::getenv("CWSP_FAILPOINTS");
        spec != nullptr && spec[0] != '\0') {
      std::uint64_t seed = 1;
      if (const char* seed_text = std::getenv("CWSP_FAILPOINTS_SEED");
          seed_text != nullptr && seed_text[0] != '\0') {
        seed = std::strtoull(seed_text, nullptr, 10);
      }
      cwsp::failpoint::Registry::global().configure(spec, seed);
    }
    for (const Subcommand& cmd : subcommands()) {
      if (command == cmd.name) return cmd.handler(args, lib);
    }
  } catch (const cwsp::ParseError& e) {
    std::cerr << "parse error: " << e.what() << '\n';
    return 2;
  } catch (const cwsp::SolveError& e) {
    std::cerr << "solver error: " << e.what() << '\n';
    return 3;
  } catch (const cwsp::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << '\n';
    return 4;
  }
  return usage();
}
