// Reproduces Table 1: area and delay overhead of the secondary-path CWSP
// protection at Q = 150 fC (τα = 200 ps, τβ = 50 ps, δ = 600 ps,
// CWSP sized 40/16, delay lines of 4 + 10 segments).

#include <iostream>

#include "support.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();

  std::vector<bench::BenchmarkSpec> specs;
  for (const auto& spec : bench::overhead_benchmarks()) {
    if (spec.table1_q150.has_value()) specs.push_back(spec);
  }

  std::cout << "Table 1 — Area and Delay Overhead, Q = 0.15 pC "
               "(paper: avg 39.31% area, 0.51% delay)\n";
  const auto rows = benchtool::run_suite(
      specs, library, core::ProtectionParams::q150(), /*custom_delta=*/false);
  benchtool::print_overhead_table(
      rows, &bench::BenchmarkSpec::table1_q150, std::cout);
  return 0;
}
