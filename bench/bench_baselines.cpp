// Per-circuit comparison of every implemented hardening technique (the
// expanded view behind Table 4 and the §2 discussion): secondary-path
// CWSP (this work), in-path CWSP [15], per-gate CWSP [21], gate resizing
// [13], spatial TMR and multi-strobe time-TMR [23].

#include <iostream>

#include "baselines/compare.hpp"
#include "bencharness/generator.hpp"
#include "common/table.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();

  for (const char* name : {"alu2", "C880"}) {
    const auto gen =
        bench::generate_benchmark(bench::find_benchmark(name), library);

    baselines::CompareOptions options;
    options.resizing.samples = 200;
    const auto reports = baselines::compare_all(gen.netlist, options);

    TextTable table;
    table.set_header({"Technique", "Area Ovh %", "Delay Ovh %",
                      "Protection %", "Max glitch ps", "Feasible"});
    for (const auto& r : reports) {
      table.add_row({r.technique, TextTable::num(r.area_overhead_pct(), 2),
                     TextTable::num(r.delay_overhead_pct(), 2),
                     TextTable::num(r.protection_pct, 1),
                     TextTable::num(r.max_glitch.value(), 0),
                     r.feasible ? "yes" : "no"});
    }
    std::cout << "Hardening techniques on " << name << " (Dmax "
              << TextTable::num(gen.measured_dmax.value(), 0) << " ps, area "
              << TextTable::num(gen.measured_area.value(), 2) << " um^2)\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
