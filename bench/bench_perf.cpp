// Google-benchmark microbenchmarks of the library's hot paths: STA,
// event-driven glitch propagation, MiniSpice strike transients and the
// hardening transform. These guard against performance regressions in the
// kernels the table benches run thousands of times.

#include <benchmark/benchmark.h>

#include "bencharness/generator.hpp"
#include "common/failpoint.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/protection_sim.hpp"
#include "sim/compiled_kernel.hpp"
#include "sim/event_sim.hpp"
#include "sim/logic_sim.hpp"
#include "sim/strike_lanes.hpp"
#include "spice/subckt.hpp"
#include "sta/sta.hpp"

namespace {

using namespace cwsp;

const CellLibrary& library() {
  static const CellLibrary lib = make_default_library();
  return lib;
}

const Netlist& alu2() {
  static const bench::GeneratedBenchmark gen =
      bench::generate_benchmark(bench::find_benchmark("alu2"), library());
  return gen.netlist;
}

void BM_Sta(benchmark::State& state) {
  const Netlist& netlist = alu2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sta(netlist).dmax.value());
  }
}
BENCHMARK(BM_Sta);

void BM_EventSimCycle(benchmark::State& state) {
  const Netlist& netlist = alu2();
  const sim::EventSim esim(netlist);
  std::vector<bool> pis(netlist.primary_inputs().size(), true);
  set::Strike strike;
  strike.node = netlist.gate(GateId{0}).output;
  strike.start = Picoseconds(800.0);
  strike.width = Picoseconds(400.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        esim.simulate_cycle(pis, {}, Picoseconds(1800.0), strike)
            .struck_po.size());
  }
}
BENCHMARK(BM_EventSimCycle);

void BM_CompiledEventSimCycle(benchmark::State& state) {
  // Same strike scenario as BM_EventSimCycle, on the compiled kernel:
  // cone-restricted propagation + golden-cycle caching.
  const Netlist& netlist = alu2();
  const sim::CompiledEventSim esim(netlist);
  std::vector<bool> pis(netlist.primary_inputs().size(), true);
  set::Strike strike;
  strike.node = netlist.gate(GateId{0}).output;
  strike.start = Picoseconds(800.0);
  strike.width = Picoseconds(400.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        esim.simulate_cycle(pis, {}, Picoseconds(1800.0), strike)
            .struck_po.size());
  }
}
BENCHMARK(BM_CompiledEventSimCycle);

void BM_CompiledGoldenCycleCached(benchmark::State& state) {
  // The no-strike cycle every campaign pays per stimulus: a golden-cache
  // hit after the first iteration.
  const Netlist& netlist = alu2();
  const sim::CompiledEventSim esim(netlist);
  std::vector<bool> pis(netlist.primary_inputs().size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        esim.simulate_cycle(pis, {}, Picoseconds(1800.0), std::nullopt)
            .golden_po.size());
  }
}
BENCHMARK(BM_CompiledGoldenCycleCached);

void BM_SpiceStrike(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::measure_strike_glitch_width(Femtocoulombs(100.0)).value());
  }
}
BENCHMARK(BM_SpiceStrike);

void BM_Harden(benchmark::State& state) {
  const Netlist& netlist = alu2();
  const auto params = core::ProtectionParams::q100();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::harden_assuming_balanced_paths(netlist, params)
            .hardened_area.value());
  }
}
BENCHMARK(BM_Harden);

void BM_GenerateBenchmark(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::generate_benchmark(bench::find_benchmark("C432"), library())
            .netlist.num_gates());
  }
}
BENCHMARK(BM_GenerateBenchmark);

void BM_LogicSimCycle(benchmark::State& state) {
  const Netlist& netlist = alu2();
  sim::LogicSim sim(netlist);
  std::vector<bool> inputs(netlist.primary_inputs().size(), true);
  for (auto _ : state) {
    sim.step(inputs);
    benchmark::DoNotOptimize(sim.output_values().size());
    inputs[0] = !inputs[0];
  }
}
BENCHMARK(BM_LogicSimCycle);

void BM_LogicSim64Cycle(benchmark::State& state) {
  // One bit-parallel pass settles 64 stimulus patterns; counters report
  // per-pattern throughput for comparison against BM_LogicSimCycle.
  const Netlist& netlist = alu2();
  sim::LogicSim64 sim(netlist);
  std::uint64_t pattern = 0x5555555555555555ull;
  for (auto _ : state) {
    for (std::size_t i = 0; i < netlist.primary_inputs().size(); ++i) {
      sim.set_input_word(i, pattern + i);
    }
    sim.evaluate();
    sim.clock();
    benchmark::DoNotOptimize(sim.output_word(0));
    pattern = pattern * 6364136223846793005ull + 1442695040888963407ull;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LogicSim64Cycle);

void BM_WideLogicSimCycle(benchmark::State& state) {
  // One SoA topo sweep settles `width` stimulus patterns; the
  // strikes_per_second counter reports per-pattern throughput so the
  // 64/256/512 rows compare directly against BM_LogicSim64Cycle.
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const Netlist& netlist = alu2();
  static const auto context = sim::CompiledKernelContext::build(netlist);
  sim::WideLogicSim sim(context->view, width);
  const std::size_t words = sim.words_per_net();
  std::uint64_t pattern = 0x5555555555555555ull;
  for (auto _ : state) {
    for (std::size_t i = 0; i < netlist.primary_inputs().size(); ++i) {
      for (std::size_t w = 0; w < words; ++w) {
        sim.set_input_word(i, w, pattern + i + w);
      }
    }
    sim.evaluate();
    sim.clock();
    benchmark::DoNotOptimize(sim.value_word(netlist.primary_outputs()[0], 0));
    pattern = pattern * 6364136223846793005ull + 1442695040888963407ull;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
  state.SetLabel(sim.isa_name());
}
BENCHMARK(BM_WideLogicSimCycle)->Arg(64)->Arg(256)->Arg(512);

void BM_StrikeLaneBatch(benchmark::State& state) {
  // Full strike-lane batch resolution: up to `width` faulty variants of a
  // 10-cycle run classified per pass. Counters land in BENCH_perf.json
  // for the CI perf ratchet: strikes_per_second (classified strikes per
  // wall second) and lane_occupancy (filled slots over offered slots).
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  static const Netlist netlist = [] {
    return bench::clone_with_output_flip_flops(alu2());
  }();
  const auto params = core::ProtectionParams::q100();
  const Picoseconds period = core::min_clock_period_for_delta(params);
  sim::StrikeLaneSim lanes(sim::CompiledKernelContext::build(netlist), period,
                           params.delta, width);

  constexpr std::size_t kCycles = 10;
  std::vector<std::vector<bool>> inputs(
      kCycles, std::vector<bool>(netlist.primary_inputs().size()));
  std::uint64_t bits = 0x9e3779b97f4a7c15ull;
  for (auto& cycle : inputs) {
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      bits = bits * 6364136223846793005ull + 1442695040888963407ull;
      cycle[i] = (bits >> 37) & 1;
    }
  }
  std::vector<sim::LaneScenario> batch(lanes.lanes());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    sim::LaneScenario& scenario = batch[i];
    scenario.strike.node = netlist.gate(GateId{i % netlist.num_gates()}).output;
    scenario.strike.start = Picoseconds(0.25 * period.value() +
                                        static_cast<double>(i % 7) * 40.0);
    scenario.strike.width = (i % 3 == 0)
                                ? params.delta + Picoseconds(400.0)
                                : params.delta * 0.5;
    scenario.cycle = i % kCycles;
    scenario.inputs = &inputs;
  }
  std::vector<sim::LaneOutcome> outcomes;
  for (auto _ : state) {
    lanes.run_batch(batch, outcomes);
    benchmark::DoNotOptimize(outcomes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["strikes_per_second"] = benchmark::Counter(
      static_cast<double>(batch.size()),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["lane_occupancy"] =
      static_cast<double>(lanes.lanes_filled()) /
      static_cast<double>(lanes.lane_slots());
  state.SetLabel(lanes.isa_name());
}
BENCHMARK(BM_StrikeLaneBatch)->Arg(64)->Arg(256)->Arg(512);

void BM_TopologicalOrderMemoized(benchmark::State& state) {
  // Memoized after the first call — this measures the cached lookup.
  const Netlist& netlist = alu2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist.topological_order().size());
  }
}
BENCHMARK(BM_TopologicalOrderMemoized);

void BM_ProtectionSimRun(benchmark::State& state) {
  // Protocol execution incl. one detection/repair on a small FSM.
  static const Netlist netlist = [] {
    Netlist n(library(), "fsm");
    const NetId a = n.add_primary_input("a");
    const GateId g = n.add_gate(library().cell_for(CellKind::kXor2),
                                {a, n.add_net("qf")}, "d");
    n.add_flip_flop_onto(n.gate(g).output, *n.find_net("qf"));
    n.mark_primary_output(*n.find_net("qf"));
    n.validate();
    return n;
  }();
  const auto params = core::ProtectionParams::q100();
  core::ProtectionSim sim(netlist, params, Picoseconds(1600.0));
  std::vector<std::vector<bool>> inputs(16, {true});
  core::ScheduledStrike strike;
  strike.cycle = 5;
  strike.target = core::StrikeTarget::kFunctional;
  strike.strike.node = *netlist.find_net("d");
  strike.strike.start = Picoseconds(1400.0);
  strike.strike.width = Picoseconds(350.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(inputs, {strike}).bubbles);
  }
}
BENCHMARK(BM_ProtectionSimRun);

void BM_FailpointInactive(benchmark::State& state) {
  // The disarmed failpoint gate (docs/chaos.md): with nothing configured
  // the hot-path check is one relaxed atomic load, so instrumented seams
  // (journal writes, dispatch, enqueue) pay ~nothing in production. The
  // per-iteration time here must stay in the low single-digit ns —
  // anything resembling a lock or map lookup is a regression.
  failpoint::Registry::global().clear();
  for (auto _ : state) {
    CWSP_FAILPOINT("bench.inactive.site");
    bool armed = failpoint::armed();
    benchmark::DoNotOptimize(armed);
  }
}
BENCHMARK(BM_FailpointInactive);

}  // namespace

BENCHMARK_MAIN();
