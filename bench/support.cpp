#include "support.hpp"

#include "cwsp/timing.hpp"

namespace cwsp::benchtool {

std::vector<SuiteRow> run_suite(const std::vector<bench::BenchmarkSpec>& specs,
                                const CellLibrary& library,
                                const core::ProtectionParams& params,
                                bool custom_delta) {
  std::vector<SuiteRow> rows;
  rows.reserve(specs.size());
  for (const auto& spec : specs) {
    // Move the generated netlist into the row first: HardenedDesign keeps
    // a pointer to it, and the reserve() above guarantees the row never
    // relocates afterwards.
    rows.push_back(SuiteRow{&spec, core::HardenedDesign{},
                            bench::generate_benchmark(spec, library)});
    SuiteRow& row = rows.back();

    core::ProtectionParams circuit_params = params;
    if (custom_delta) {
      // Table 3 mode: δ = min{D_min/2, (D_max − Δ)/2} with the paper's
      // balanced-path assumption and the Q=100 fC area envelope.
      const auto timing =
          core::timing_with_assumed_dmin(row.generated.measured_dmax);
      const auto delta = core::max_protected_glitch(timing, params);
      circuit_params = core::ProtectionParams::for_glitch_width(delta);
    }
    row.design = core::harden_assuming_balanced_paths(row.generated.netlist,
                                                      circuit_params);
  }
  return rows;
}

void print_overhead_table(
    const std::vector<SuiteRow>& rows,
    const std::optional<bench::PaperHardened> bench::BenchmarkSpec::*paper_of,
    std::ostream& os) {
  TextTable table;
  table.set_header({"Circuit", "Regular um^2", "Hardened um^2",
                    "%Ovh (ours)", "%Ovh (paper)", "Dmax ps",
                    "Regular ps", "Hardened ps", "%Dly (ours)",
                    "%Dly (paper)"});

  double sum_area_ours = 0.0;
  double sum_area_paper = 0.0;
  double sum_delay_ours = 0.0;
  std::size_t paper_count = 0;

  for (const auto& row : rows) {
    const auto& d = row.design;
    const auto& paper = row.spec->*paper_of;
    const double paper_area_ovh =
        paper.has_value() ? paper->area_overhead_pct : 0.0;
    const double paper_delay_ovh =
        11.5 / (row.spec->dmax_ps + 109.0) * 100.0;

    sum_area_ours += d.area_overhead_pct();
    sum_delay_ours += d.delay_overhead_pct();
    if (paper.has_value()) {
      sum_area_paper += paper_area_ovh;
      ++paper_count;
    }

    table.add_row({row.spec->name, TextTable::num(d.regular_area.value(), 4),
                   TextTable::num(d.hardened_area.value(), 4),
                   TextTable::num(d.area_overhead_pct(), 2),
                   paper.has_value() ? TextTable::num(paper_area_ovh, 2)
                                     : "-",
                   TextTable::num(d.timing.dmax.value(), 2),
                   TextTable::num(d.regular_period.value(), 2),
                   TextTable::num(d.hardened_period.value(), 2),
                   TextTable::num(d.delay_overhead_pct(), 2),
                   TextTable::num(paper_delay_ovh, 2)});
  }

  const double n = static_cast<double>(rows.size());
  table.add_row({"Average", "", "", TextTable::num(sum_area_ours / n, 2),
                 paper_count > 0
                     ? TextTable::num(sum_area_paper /
                                          static_cast<double>(paper_count),
                                      2)
                     : "-",
                 "", "", "", TextTable::num(sum_delay_ours / n, 2), ""});
  table.print(os);
}

}  // namespace cwsp::benchtool
