// Analysis-service throughput: warm-cache requests through the resident
// server vs cold per-request state rebuild (the cost a fresh `cwsp_tool`
// process pays before it can answer anything). Three tiers on the alu2
// ISCAS design:
//
//   cold          fresh DesignSession::build + campaign per request —
//                 the one-shot CLI's work, minus even its exec/link
//                 overhead, so the comparison favors cold
//   warm_session  distinct requests (new seed each) against a warm
//                 session: parse/STA/kernel-context amortized away
//   warm          repeated identical requests: the result cache answers
//
// Reports requests/s and p50/p99 latency per tier, verifies the service
// payload is byte-identical to direct execution, and fails unless the
// warm tier clears a 5x throughput floor over cold. Stdout is the JSON
// document CI captures as BENCH_service.json; the human-readable summary
// goes to stderr.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bencharness/generator.hpp"
#include "common/stopwatch.hpp"
#include "netlist/writer.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/session.hpp"

namespace {

using namespace cwsp;

constexpr std::size_t kRuns = 12;
constexpr std::size_t kCycles = 10;
constexpr std::uint64_t kSeed = 2026;

std::string campaign_request(const std::string& id, const std::string& design,
                             std::uint64_t seed) {
  std::ostringstream os;
  os << "{\"id\":\"" << id << "\",\"op\":\"campaign\",\"design\":\""
     << service::json::escape(design)
     << "\",\"design_name\":\"alu2\",\"runs\":" << kRuns
     << ",\"cycles\":" << kCycles << ",\"width\":400,\"seed\":" << seed
     << ",\"adversarial\":true}";
  return os.str();
}

/// One request/response round trip; returns the unescaped payload and
/// dies loudly on anything but an ok response.
std::string round_trip(service::Client& client, const std::string& line) {
  client.send_line(line);
  std::string response;
  if (!client.read_line(response)) {
    std::cerr << "FATAL: server closed the connection\n";
    std::exit(1);
  }
  const auto value = service::json::parse(response);
  if (!value.boolean("ok", false)) {
    std::cerr << "FATAL: request failed: " << response << "\n";
    std::exit(1);
  }
  return value.text("payload", "");
}

struct Tier {
  std::size_t requests = 0;
  double requests_per_s = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
};

Tier summarize(std::vector<std::uint64_t> samples_us, double total_ms) {
  Tier tier;
  tier.requests = samples_us.size();
  tier.requests_per_s =
      static_cast<double>(samples_us.size()) / (total_ms / 1000.0);
  std::sort(samples_us.begin(), samples_us.end());
  const auto rank = [&](double q) {
    const std::size_t n = samples_us.size();
    std::size_t i = static_cast<std::size_t>(q * static_cast<double>(n));
    return samples_us[std::min(i, n - 1)];
  };
  tier.p50_us = rank(0.50);
  tier.p99_us = rank(0.99);
  return tier;
}

void emit_tier(std::ostream& os, const char* name, const Tier& tier) {
  os << "  \"" << name << "\": {\"requests\": " << tier.requests
     << ", \"requests_per_s\": " << tier.requests_per_s
     << ", \"p50_us\": " << tier.p50_us << ", \"p99_us\": " << tier.p99_us
     << "}";
}

}  // namespace

int main() {
  const CellLibrary library = make_default_library();

  // The same alu2 setup bench_campaign uses, serialized back to .bench
  // text so it can ride inline in service requests.
  const auto gen =
      bench::generate_benchmark(bench::find_benchmark("alu2"), library);
  const auto seq = bench::clone_with_output_flip_flops(gen.netlist);
  const std::string design = to_bench_string(seq);

  service::CampaignSpec spec;
  spec.runs = kRuns;
  spec.cycles = kCycles;
  spec.width_ps = 400.0;
  spec.seed = kSeed;
  spec.adversarial = true;

  // ---- cold: rebuild every amortizable artifact per request ----------
  constexpr std::size_t kColdRequests = 6;
  std::string cold_output;
  std::vector<std::uint64_t> cold_us;
  Stopwatch cold_total;
  for (std::size_t i = 0; i < kColdRequests; ++i) {
    Stopwatch watch;
    const auto session = service::DesignSession::build("alu2", design, library);
    const auto outcome = service::run_campaign(*session, spec);
    cold_us.push_back(static_cast<std::uint64_t>(watch.elapsed_ms() * 1000.0));
    if (cold_output.empty()) cold_output = outcome.output;
    if (outcome.output != cold_output) {
      std::cerr << "FATAL: cold runs diverged\n";
      return 1;
    }
  }
  const double cold_total_ms = cold_total.elapsed_ms();

  // ---- resident server ----------------------------------------------
  service::ServerOptions options;
  options.socket_path =
      "/tmp/cwsp_bench_service_" + std::to_string(::getpid()) + ".sock";
  options.workers = 2;
  service::Server server(options, library);
  std::thread server_thread([&server] { server.run(); });

  std::unique_ptr<service::Client> client;
  for (int attempt = 0; attempt < 400 && !client; ++attempt) {
    try {
      client = std::make_unique<service::Client>(options.socket_path);
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  if (!client) {
    std::cerr << "FATAL: server never came up on " << options.socket_path
              << "\n";
    return 1;
  }

  // Warm-up request: populates the session + result caches and pins down
  // the byte-identity contract against the direct execution above.
  const std::string warm_payload =
      round_trip(*client, campaign_request("warmup", design, kSeed));
  if (warm_payload != cold_output) {
    std::cerr << "FATAL: service payload diverged from direct execution\n";
    return 1;
  }

  // ---- warm_session: distinct seeds, warm per-design state -----------
  constexpr std::size_t kSessionRequests = 12;
  std::vector<std::uint64_t> session_us;
  Stopwatch session_total;
  for (std::size_t i = 0; i < kSessionRequests; ++i) {
    std::string id = "s";
    id += std::to_string(i);
    Stopwatch watch;
    (void)round_trip(*client, campaign_request(id, design, 3000 + i));
    session_us.push_back(
        static_cast<std::uint64_t>(watch.elapsed_ms() * 1000.0));
  }
  const double session_total_ms = session_total.elapsed_ms();

  // ---- warm: repeated identical requests, result cache hot -----------
  constexpr std::size_t kWarmRequests = 48;
  std::vector<std::uint64_t> warm_us;
  Stopwatch warm_total;
  for (std::size_t i = 0; i < kWarmRequests; ++i) {
    std::string id = "w";
    id += std::to_string(i);
    Stopwatch watch;
    const std::string payload =
        round_trip(*client, campaign_request(id, design, kSeed));
    warm_us.push_back(static_cast<std::uint64_t>(watch.elapsed_ms() * 1000.0));
    if (payload != cold_output) {
      std::cerr << "FATAL: cached payload diverged from direct execution\n";
      return 1;
    }
  }
  const double warm_total_ms = warm_total.elapsed_ms();

  client.reset();
  server.request_shutdown();
  server_thread.join();

  const Tier cold = summarize(cold_us, cold_total_ms);
  const Tier warm_session = summarize(session_us, session_total_ms);
  const Tier warm = summarize(warm_us, warm_total_ms);
  const double speedup = warm.requests_per_s / cold.requests_per_s;
  const double session_speedup =
      warm_session.requests_per_s / cold.requests_per_s;

  std::cout << "{\n  \"schema\": \"cwsp-bench-service-v1\",\n"
            << "  \"design\": \"alu2\",\n"
            << "  \"campaign\": {\"runs\": " << kRuns
            << ", \"cycles\": " << kCycles << ", \"seed\": " << kSeed
            << ", \"adversarial\": true},\n";
  emit_tier(std::cout, "cold", cold);
  std::cout << ",\n";
  emit_tier(std::cout, "warm_session", warm_session);
  std::cout << ",\n";
  emit_tier(std::cout, "warm", warm);
  std::cout << ",\n  \"speedup_warm_vs_cold\": " << speedup
            << ",\n  \"speedup_warm_session_vs_cold\": " << session_speedup
            << ",\n  \"byte_identical\": true\n}\n";

  std::cerr << "alu2 service throughput: cold " << cold.requests_per_s
            << " req/s, warm-session " << warm_session.requests_per_s
            << " req/s, warm " << warm.requests_per_s << " req/s ("
            << speedup << "x vs cold; payloads byte-identical)\n";

  if (speedup < 5.0) {
    std::cerr << "FATAL: warm/cold speedup " << speedup
              << "x is below the 5x floor\n";
    return 1;
  }
  return 0;
}
