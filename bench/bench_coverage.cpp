// Validates the paper's central claim (§3.2): 100% SET tolerance for
// glitches within the protected width, across functional strikes and
// every protection-circuit strike scenario — and shows the unprotected
// design fails for the same strike population.

#include <algorithm>
#include <iostream>

#include "bencharness/generator.hpp"
#include "common/table.hpp"
#include "cwsp/coverage.hpp"
#include "cwsp/timing.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();
  const auto params = core::ProtectionParams::q100();

  TextTable table;
  table.set_header({"Circuit", "Strikes", "Protected cov %",
                    "Unprotected fail %", "Bubbles", "Detected",
                    "Spurious"});

  for (const char* name : {"alu2", "C432"}) {
    const auto gen =
        bench::generate_benchmark(bench::find_benchmark(name), library);
    const auto seq = bench::clone_with_output_flip_flops(gen.netlist);

    const Picoseconds period = std::max(
        core::hardened_clock_period(gen.measured_dmax, library),
        core::min_clock_period_for_delta(params));

    core::CampaignOptions options;
    options.runs = 40;
    options.cycles_per_run = 10;
    options.glitch_width = Picoseconds(400.0);
    options.seed = 2026;

    const auto functional =
        core::run_functional_campaign(seq, params, period, options);
    const auto scenarios =
        core::run_scenario_sweep(seq, params, period, options);

    table.add_row(
        {std::string(name) + " (functional)",
         std::to_string(functional.strikes_injected),
         TextTable::num(functional.protected_coverage_pct(), 1),
         TextTable::num(functional.unprotected_failure_pct(), 1),
         std::to_string(functional.bubbles),
         std::to_string(functional.detected_errors),
         std::to_string(functional.spurious_recomputes)});
    table.add_row({std::string(name) + " (scenario sweep)",
                   std::to_string(scenarios.strikes_injected),
                   TextTable::num(scenarios.protected_coverage_pct(), 1),
                   "-", std::to_string(scenarios.bubbles),
                   std::to_string(scenarios.detected_errors),
                   std::to_string(scenarios.spurious_recomputes)});
  }

  std::cout << "SET fault-injection coverage (paper claim: 100% protection; "
               "glitch width 400 ps <= delta)\n";
  table.print(std::cout);
  return 0;
}
