// Reproduces Table 3: fast circuits (D_max < 1415 ps) protected for the
// reduced glitch width δ = min{D_min/2, (D_max − Δ)/2}, with the Q=100 fC
// protection circuit as the area upper bound, Δ = 415 ps and the paper's
// D_min = 0.8·D_max assumption. The paper's final column is the delay
// overhead in percent (11.5/(D_max+109)); we print it alongside the
// computed maximum glitch width the extraction mislabelled.

#include <iostream>

#include "support.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();

  std::cout << "Table 3 — Overhead at delta = min{Dmin/2, (Dmax-Delta)/2} "
               "(paper: avg 61.41% area, 0.99% delay)\n";
  const auto rows =
      benchtool::run_suite(bench::fast_benchmarks(), library,
                           core::ProtectionParams::q100(),
                           /*custom_delta=*/true);
  benchtool::print_overhead_table(
      rows, &bench::BenchmarkSpec::table3_custom_delta, std::cout);

  // Per-circuit protected glitch width (the quantity Table 3's caption
  // promises; column values in the published PDF were the delay ovh %).
  TextTable widths;
  widths.set_header({"Circuit", "delta (ps)", "delta (ns)",
                     "binding constraint"});
  for (const auto& row : rows) {
    const auto timing = core::timing_with_assumed_dmin(row.design.timing.dmax);
    const auto params = core::ProtectionParams::q100();
    const double by_dmin = timing.dmin.value() / 2.0;
    const double by_dmax =
        (timing.dmax.value() - params.protection_path_delta().value()) / 2.0;
    widths.add_row({row.spec->name,
                    TextTable::num(row.design.max_glitch.value(), 1),
                    TextTable::num(row.design.max_glitch.value() / 1000.0, 3),
                    by_dmax < by_dmin ? "(Dmax-Delta)/2 (Eq. 5)"
                                      : "Dmin/2 (Eq. 2)"});
  }
  std::cout << '\n';
  widths.print(std::cout);
  return 0;
}
