// Soft-error-rate analysis (paper §1 environment + footnote 2): verifies
// the double-strike probability computation the recovery protocol rests
// on, and quantifies the MTBF improvement the hardening buys under the
// JPL-1991 fluence and an exponential LET spectrum.

#include <iostream>

#include "bencharness/generator.hpp"
#include "common/table.hpp"
#include "cwsp/harden.hpp"
#include "set/ser.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();
  set::SerAnalyzer analyzer;

  // --- footnote 2 reproduction -----------------------------------------
  std::cout << "Footnote 2: double-strike probability\n";
  std::cout << "  paper: area 473.4e-8 cm^2, period 5.5 ns -> 4.78e-10\n";
  std::cout << "  ours : "
            << analyzer.consecutive_cycle_strike_probability(
                   SquareMicrons(473.4), Picoseconds(5500.0))
            << "\n\n";

  // --- LET spectrum summary ---------------------------------------------
  TextTable spectrum;
  spectrum.set_header({"LET (MeV cm^2/mg)", "P(LET > L)",
                       "charge @ t=2um (fC)"});
  for (double let : {1.0, 5.0, 10.0, 20.0, 30.0}) {
    spectrum.add_row({TextTable::num(let, 0),
                      TextTable::num(analyzer.fraction_let_above(let), 6),
                      TextTable::num(10.36 * let * 2.0, 1)});
  }
  std::cout << "LET spectrum (P(>20) small, P(>30) exceedingly rare, §1)\n";
  spectrum.print(std::cout);

  // --- per-benchmark SER -------------------------------------------------
  TextTable table;
  table.set_header({"Circuit", "strikes/yr", "unprot err/yr",
                    "hardened err/yr", "MTBF gain", "2-strike prob"});
  const auto params = core::ProtectionParams::q100();
  for (const char* name : {"alu2", "C880", "dalu"}) {
    const auto gen =
        bench::generate_benchmark(bench::find_benchmark(name), library);
    const auto design =
        core::harden_assuming_balanced_paths(gen.netlist, params);
    // 0.2: typical measured unprotected strike-failure fraction from the
    // coverage campaigns.
    const auto r = analyzer.analyze(design.hardened_area, design.max_glitch,
                                    0.2);
    table.add_row(
        {name, TextTable::num(r.strikes_per_year, 0),
         TextTable::num(r.unprotected_errors_per_year, 1),
         TextTable::num(r.hardened_errors_per_year, 3),
         TextTable::num(r.improvement_factor, 1) + "x",
         TextTable::num(analyzer.consecutive_cycle_strike_probability(
                            design.hardened_area, design.hardened_period),
                        14)});
  }
  std::cout << "\nSER per benchmark (unprotected failure fraction 0.2)\n";
  table.print(std::cout);
  return 0;
}
