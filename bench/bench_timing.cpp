// Ablation of the timing equations (§3.4): minimum D_max thresholds
// (Eq. 4/5), protected glitch width vs D_max (Eqs. 2+5), Eq. 6's
// period/δ trade-off, and the clock-skew derating.

#include <iostream>

#include "common/table.hpp"
#include "cwsp/timing.hpp"

int main() {
  using namespace cwsp;
  const auto p100 = core::ProtectionParams::q100();
  const auto p150 = core::ProtectionParams::q150();

  std::cout << "Protection-path constants\n";
  TextTable consts;
  consts.set_header({"Config", "delta ps", "D_CWSP ps", "Delta ps",
                     "CLK_DEL lag ps", "min Dmax ps (paper)"});
  consts.add_row({"Q=100 fC", TextTable::num(p100.delta.value(), 0),
                  TextTable::num(p100.d_cwsp.value(), 0),
                  TextTable::num(p100.protection_path_delta().value(), 0),
                  TextTable::num(p100.clk_del_delay().value(), 0),
                  TextTable::num(p100.min_dmax().value(), 0) + " (1415)"});
  consts.add_row({"Q=150 fC", TextTable::num(p150.delta.value(), 0),
                  TextTable::num(p150.d_cwsp.value(), 0),
                  TextTable::num(p150.protection_path_delta().value(), 0),
                  TextTable::num(p150.clk_del_delay().value(), 0),
                  TextTable::num(p150.min_dmax().value(), 0) + " (1605)"});
  consts.print(std::cout);

  std::cout << "\nProtected glitch width vs Dmax (Dmin = 0.8*Dmax, Eq. 2+5)\n";
  TextTable sweep;
  sweep.set_header({"Dmax ps", "delta_max ps", "binding", "full 500 ps?"});
  for (double dmax = 600.0; dmax <= 2400.0; dmax += 200.0) {
    const auto timing = core::timing_with_assumed_dmin(Picoseconds(dmax));
    const auto delta = core::max_protected_glitch(timing, p100);
    const double by_dmin = timing.dmin.value() / 2.0;
    const double by_dmax =
        (dmax - p100.protection_path_delta().value()) / 2.0;
    sweep.add_row({TextTable::num(dmax, 0),
                   TextTable::num(delta.value(), 1),
                   by_dmax < by_dmin ? "Eq.5 (Dmax)" : "Eq.2 (Dmin)",
                   core::supports_full_protection(timing, p100) ? "yes"
                                                                : "no"});
  }
  sweep.print(std::cout);

  std::cout << "\nEq. 6: max delta vs clock period (Q=100 fC circuit)\n";
  TextTable eq6;
  eq6.set_header({"Period ps", "delta_max ps"});
  for (double period = 1400.0; period <= 2600.0; period += 200.0) {
    eq6.add_row({TextTable::num(period, 0),
                 TextTable::num(
                     core::max_delta_for_period(Picoseconds(period), p100)
                         .value(),
                     1)});
  }
  eq6.print(std::cout);

  std::cout << "\nClock-skew derating (Dmax = 2000 ps, Dmin = 1600 ps)\n";
  TextTable skew;
  skew.set_header({"Skew ps", "delta_max ps"});
  const core::DesignTiming timing{Picoseconds(2000.0), Picoseconds(1600.0)};
  for (double s = 0.0; s <= 400.0; s += 100.0) {
    skew.add_row({TextTable::num(s, 0),
                  TextTable::num(core::max_protected_glitch(
                                     timing, p100, Picoseconds(s))
                                     .value(),
                                 1)});
  }
  skew.print(std::cout);
  return 0;
}
