#pragma once
// Shared support for the table-reproduction binaries: runs the calibrated
// synthetic suite through the hardening flow and formats rows exactly as
// the paper's tables do (ours vs paper side by side).

#include <iostream>
#include <string>
#include <vector>

#include "bencharness/benchmark_data.hpp"
#include "bencharness/generator.hpp"
#include "common/table.hpp"
#include "cwsp/harden.hpp"

namespace cwsp::benchtool {

struct SuiteRow {
  const bench::BenchmarkSpec* spec = nullptr;
  core::HardenedDesign design;
  bench::GeneratedBenchmark generated;
};

/// Generates each circuit and hardens it (paper's D_min = 0.8·D_max
/// assumption), with per-circuit δ when `custom_delta` (Table 3 mode).
std::vector<SuiteRow> run_suite(const std::vector<bench::BenchmarkSpec>& specs,
                                const CellLibrary& library,
                                const core::ProtectionParams& params,
                                bool custom_delta);

/// Prints an overhead table (Tables 1/2 layout) and the average row.
/// `paper_of` selects the paper's hardened numbers per spec.
void print_overhead_table(
    const std::vector<SuiteRow>& rows,
    const std::optional<bench::PaperHardened> bench::BenchmarkSpec::*paper_of,
    std::ostream& os);

}  // namespace cwsp::benchtool
