// Reproduces Figure 6: voltage glitch waveform when a radiation strike of
// Q = 100 fC / 150 fC (τα = 200 ps, τβ = 50 ps) hits a minimum-sized
// inverter's output. The paper observes the node clamping near 1.6 V
// (junction diodes turn on ~0.6 V above VDD) and glitch widths of 500 ps
// and 600 ps respectively.

#include <iostream>

#include "common/table.hpp"
#include "spice/subckt.hpp"

int main() {
  using namespace cwsp;
  using namespace cwsp::literals;

  for (const double q : {100.0, 150.0}) {
    const auto wave = spice::strike_waveform(Femtocoulombs(q));
    const double width =
        wave.pulse_width_above(0.5).value_or(0.0);

    std::cout << "Figure 6 — struck min-inverter waveform, Q = " << q
              << " fC (strike at t = 100 ps)\n";
    std::cout << "  peak voltage    : " << TextTable::num(wave.peak(), 3)
              << " V   (paper: ~1.6 V clamp)\n";
    std::cout << "  glitch width    : " << TextTable::num(width, 1)
              << " ps  (paper: " << (q < 125.0 ? "500" : "600") << " ps)\n";

    TextTable series;
    series.set_header({"t (ps)", "V(out)"});
    for (double t = 0.0; t <= 1200.0; t += 50.0) {
      series.add_row({TextTable::num(t, 0),
                      TextTable::num(wave.value_at(t), 4)});
    }
    series.print(std::cout);

    // Coarse ASCII rendering of the waveform shape.
    std::cout << "  shape (0..1.8 V):\n";
    for (double t = 0.0; t <= 1200.0; t += 25.0) {
      const double v = wave.value_at(t);
      const int cols = static_cast<int>(v / 1.8 * 60.0 + 0.5);
      std::cout << "  " << std::string(static_cast<std::size_t>(
                              std::max(0, cols)), '#')
                << '\n';
    }
    std::cout << '\n';
  }

  // The paper also reports "results for other values of Q": sweep the
  // charge range and print the width curve.
  TextTable sweep;
  sweep.set_header({"Q (fC)", "glitch width (ps)", "peak (V)"});
  for (double q = 25.0; q <= 250.0; q += 25.0) {
    const auto wave = spice::strike_waveform(Femtocoulombs(q));
    sweep.add_row(
        {TextTable::num(q, 0),
         TextTable::num(wave.pulse_width_above(0.5).value_or(0.0), 1),
         TextTable::num(wave.peak(), 3)});
  }
  std::cout << "Charge sweep (other values of Q, paper §1)\n";
  sweep.print(std::cout);
  return 0;
}
