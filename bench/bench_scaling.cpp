// Technology-scaling study motivated by the paper's introduction: "with
// the relentless shrinking of the minimum feature size ... a reduced
// diffusion capacitance ... a large voltage spike may be generated". We
// scale MiniSpice's device strength and node capacitance together (one
// knob per generation) and measure the critical charge, the Q=100 fC
// glitch width and the resulting soft-error exposure.

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "set/ser.hpp"
#include "spice/subckt.hpp"

int main() {
  using namespace cwsp;
  set::SerAnalyzer analyzer;

  struct Row {
    double scale;
    double qcrit_fc;
    double width_ps;
    double exposure;
  };
  std::vector<Row> rows;
  // scale > 1: older/larger node (stronger devices, bigger caps);
  // scale < 1: scaled-down node.
  for (double scale : {4.0, 2.0, 1.0, 0.5, 0.25}) {
    spice::SpiceTech tech;
    tech.kp_n_min *= scale;
    tech.kp_p_min *= scale;
    tech.c_node_ff *= scale;
    const double qcrit = spice::measure_critical_charge(tech).value();
    const double width =
        spice::measure_strike_glitch_width(Femtocoulombs(100.0), tech)
            .value();
    rows.push_back({scale, qcrit, width,
                    analyzer.fraction_charge_above(Femtocoulombs(qcrit))});
  }

  double baseline = 1.0;
  for (const Row& r : rows) {
    if (r.scale == 1.0) baseline = r.exposure;
  }

  TextTable table;
  table.set_header({"tech scale", "Qcrit (fC)", "glitch @100fC (ps)",
                    "P(Q > Qcrit)", "SER vs 65nm"});
  for (const Row& r : rows) {
    table.add_row({TextTable::num(r.scale, 2), TextTable::num(r.qcrit_fc, 1),
                   TextTable::num(r.width_ps, 1),
                   TextTable::num(r.exposure, 4),
                   TextTable::num(r.exposure / baseline, 2) + "x"});
  }

  std::cout << "Technology scaling vs SET susceptibility (paper §1 "
               "motivation: smaller nodes -> lower Qcrit -> higher SER)\n";
  table.print(std::cout);
  std::cout << "\nReading: shrinking the node (scale < 1) lowers the "
               "critical charge, widens the glitch a given strike causes "
               "and multiplies the fraction of environmental strikes that "
               "defeat an unprotected node — the motivation for SET "
               "hardening at 65 nm and below.\n";
  return 0;
}
