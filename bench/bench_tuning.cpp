// Protection-tuning study (paper §2: "the circuit can easily be tuned to
// tolerate glitch widths of different magnitudes"): sweep the design
// charge level, derive the glitch width electrically, size the
// protection circuit by interpolating the two published design points,
// and measure the area-overhead / protection trade on a benchmark.

#include <iostream>
#include <algorithm>

#include "bencharness/generator.hpp"
#include "common/table.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"
#include "set/glitch_model.hpp"
#include "set/ser.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();
  const set::GlitchModel glitch_model;
  const set::SerAnalyzer analyzer;

  const auto gen =
      bench::generate_benchmark(bench::find_benchmark("C3540"), library);
  std::cout << "Protection tuning on C3540 (Dmax "
            << TextTable::num(gen.measured_dmax.value(), 0) << " ps, "
            << core::protected_ff_count(gen.netlist) << " FFs)\n";

  TextTable table;
  table.set_header({"Q (fC)", "delta (ps)", "CWSP P/N", "CLK_DEL segs",
                    "area ovh %", "full prot?", "P(strike escapes)"});

  for (double q = 50.0; q <= 250.0; q += 25.0) {
    const auto width = glitch_model.glitch_width(Femtocoulombs(q));
    const auto params =
        core::ProtectionParams::for_charge(Femtocoulombs(q), width);
    const auto design =
        core::harden_assuming_balanced_paths(gen.netlist, params);
    // Strikes whose glitch exceeds the *designed* width void the CWSP
    // guarantee — that tail is what tuning trades area against.
    const double escape = analyzer.fraction_glitch_wider_than(
        std::min(params.delta, design.max_glitch));
    table.add_row(
        {TextTable::num(q, 0), TextTable::num(width.value(), 0),
         TextTable::num(params.cwsp_pmos_mult, 0) + "/" +
             TextTable::num(params.cwsp_nmos_mult, 1),
         std::to_string(params.segments_clk_del),
         TextTable::num(design.area_overhead_pct(), 2),
         design.full_designed_protection ? "yes" : "no",
         TextTable::num(escape, 4)});
  }
  table.print(std::cout);
  std::cout << "\nReading: hardening to larger strike charges costs area "
               "roughly linearly (bigger CWSP devices + longer delay "
               "lines) while the residual strike-escape probability falls "
               "exponentially with the LET spectrum; the paper's published "
               "points (100 and 150 fC) are two samples of this curve. The "
               "design stops achieving its full designed width once "
               "2*delta + Delta exceeds the circuit's Dmax (Eq. 4).\n";
  return 0;
}
