// Ablations of the design choices DESIGN.md calls out:
//   (a) glitch width vs coverage — protection is total up to δ and
//       degrades beyond it (the CWSP guarantee boundary);
//   (b) EQGLBF suppression on/off — without DFF1 the recovery protocol
//       livelocks or commits corrupted outputs (paper §3.2);
//   (c) secondary-path vs in-path CWSP — where the 2δ penalty lands;
//   (d) EQGLB tree structure vs FF count.

#include <iostream>

#include "baselines/anghel00.hpp"
#include "bencharness/generator.hpp"
#include "common/table.hpp"
#include "cwsp/coverage.hpp"
#include "cwsp/eqglb_tree.hpp"
#include "cwsp/timing.hpp"
#include "netlist/bench_parser.hpp"
#include "spice/subckt.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();
  const auto params = core::ProtectionParams::q100();

  const Netlist fsm = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q1)
OUTPUT(y)
t1 = NAND(a, q2)
t2 = XOR(t1, b)
d1 = NOT(t2)
q1 = DFF(d1)
q2 = DFF(t1)
y  = AND(q1, q2)
)",
                                         library, "fsm");
  const Picoseconds period{2000.0};

  // --- (a) glitch width sweep -------------------------------------------
  std::cout << "(a) Coverage vs glitch width (delta = "
            << params.delta.value() << " ps)\n";
  TextTable sweep;
  sweep.set_header({"width ps", "protected cov %", "unprotected fail %"});
  for (double width : {100.0, 300.0, 500.0, 700.0, 900.0}) {
    core::CampaignOptions options;
    options.runs = 120;
    options.cycles_per_run = 10;
    options.glitch_width = Picoseconds(width);
    options.seed = 99;
    const auto r =
        core::run_functional_campaign(fsm, params, period, options);
    sweep.add_row({TextTable::num(width, 0),
                   TextTable::num(r.protected_coverage_pct(), 1),
                   TextTable::num(r.unprotected_failure_pct(), 1)});
  }
  sweep.print(std::cout);

  // --- (b) EQGLBF ablation ------------------------------------------------
  std::cout << "\n(b) EQGLBF suppression flip-flop (DFF1) ablation\n";
  std::vector<std::vector<bool>> inputs;
  for (int i = 0; i < 10; ++i) inputs.push_back({(i % 2) == 0, (i % 3) == 0});
  core::ScheduledStrike strike;
  strike.cycle = 3;
  strike.target = core::StrikeTarget::kFunctional;
  strike.strike.node = *fsm.find_net("d1");
  strike.strike.start = Picoseconds(1800.0);
  strike.strike.width = Picoseconds(400.0);
  for (bool with_eqglbf : {true, false}) {
    core::ProtectionSimOptions options;
    options.eqglbf_suppression = with_eqglbf;
    core::ProtectionSim sim(fsm, params, period, options);
    const auto r = sim.run(inputs, {strike});
    std::cout << "  EQGLBF " << (with_eqglbf ? "on " : "off") << ": "
              << (r.recovered() ? "recovered" : "FAILED") << " (bubbles "
              << r.bubbles << ", livelocked " << (r.livelocked ? "yes" : "no")
              << ", silent corruptions " << r.silent_corruptions << ")\n";
  }

  // --- (c) secondary path vs functional path -----------------------------
  std::cout << "\n(c) Where the 2*delta penalty lands (alu2-scale design)\n";
  const auto gen =
      bench::generate_benchmark(bench::find_benchmark("alu2"), library);
  const auto ours = core::harden_assuming_balanced_paths(gen.netlist, params);
  const auto inpath = baselines::harden_anghel00(
      gen.netlist, {Picoseconds(params.delta.value())});
  TextTable paths;
  paths.set_header({"placement", "delay ovh %", "area ovh %"});
  paths.add_row({"secondary path (this work)",
                 TextTable::num(ours.delay_overhead_pct(), 2),
                 TextTable::num(ours.area_overhead_pct(), 2)});
  paths.add_row({"functional path [15]",
                 TextTable::num(inpath.delay_overhead_pct(), 2),
                 TextTable::num(inpath.area_overhead_pct(), 2)});
  paths.print(std::cout);

  // --- (e) latching-window profile ----------------------------------------
  // Sweep the strike time across the cycle for a fixed site: the windowed
  // structure of vulnerability (only strikes whose propagated glitch
  // overlaps the capture edge matter) is the paper's premise for
  // latching-window masking.
  std::cout << "\n(e) Strike-time profile on net d1 (capture at 2000 ps)\n";
  TextTable profile;
  profile.set_header({"strike start ps", "unprotected corrupts?",
                      "protected recovers?", "bubbles"});
  {
    core::ProtectionSim sim(fsm, params, period);
    std::vector<std::vector<bool>> inputs2;
    for (int i = 0; i < 6; ++i) {
      inputs2.push_back({(i % 2) == 0, (i % 3) == 0});
    }
    for (double start = 100.0; start < 2000.0; start += 200.0) {
      core::ScheduledStrike s;
      s.cycle = 2;
      s.target = core::StrikeTarget::kFunctional;
      s.strike.node = *fsm.find_net("d1");
      s.strike.start = Picoseconds(start);
      s.strike.width = Picoseconds(400.0);
      const auto protected_r = sim.run(inputs2, {s});
      const auto unprotected_r = sim.run_unprotected(inputs2, {s});
      profile.add_row({TextTable::num(start, 0),
                       unprotected_r.corrupted_cycles > 0 ? "yes" : "no",
                       protected_r.recovered() ? "yes" : "NO",
                       std::to_string(protected_r.bubbles)});
    }
  }
  profile.print(std::cout);

  // --- (d) EQGLB tree scaling ---------------------------------------------
  std::cout << "\n(d) EQGLB tree vs protected-FF count\n";
  TextTable tree;
  tree.set_header({"FFs", "levels", "chunks", "extra area um^2",
                   "delay ps"});
  for (int n : {6, 30, 35, 36, 108, 123, 300}) {
    const auto t = core::build_eqglb_tree(n);
    tree.add_row({std::to_string(n), std::to_string(t.levels),
                  std::to_string(t.first_level_gates),
                  TextTable::num(t.extra_area.value(), 4),
                  TextTable::num(t.delay.value(), 0)});
  }
  tree.print(std::cout);

  // --- (f) protection-logic sizing: noise margin cost ----------------------
  // Paper §3.3: "There was a 66mV reduction in the noise margin of an
  // inverter in the protection logic due to our modified sizing approach"
  // (PMOS width = NMOS width). Harmless because the skewed sizing only
  // appears on the SET-immune secondary path.
  const auto balanced = spice::measure_noise_margins(2.0, 1.0);
  const auto equal = spice::measure_noise_margins(1.0, 1.0);
  std::cout << "\n(f) Equal-width sizing noise-margin cost (paper: 66 mV)\n";
  TextTable nm;
  nm.set_header({"sizing", "switch point V", "NM_L V", "NM_H V"});
  nm.add_row({"balanced Wp=2Wn",
              TextTable::num(balanced.switch_point.value(), 3),
              TextTable::num(balanced.nm_low.value(), 3),
              TextTable::num(balanced.nm_high.value(), 3)});
  nm.add_row({"equal Wp=Wn (protection logic)",
              TextTable::num(equal.switch_point.value(), 3),
              TextTable::num(equal.nm_low.value(), 3),
              TextTable::num(equal.nm_high.value(), 3)});
  nm.print(std::cout);
  std::cout << "  NM_L reduction: "
            << TextTable::num(
                   (balanced.nm_low.value() - equal.nm_low.value()) * 1000.0,
                   0)
            << " mV\n";
  return 0;
}
