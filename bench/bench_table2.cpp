// Reproduces Table 2: area and delay overhead of the secondary-path CWSP
// protection at Q = 100 fC (δ = 500 ps, CWSP sized 30/12, delay lines of
// 4 + 8 segments).

#include <iostream>

#include "support.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();

  std::vector<bench::BenchmarkSpec> specs;
  for (const auto& spec : bench::overhead_benchmarks()) {
    if (spec.table2_q100.has_value()) specs.push_back(spec);
  }

  std::cout << "Table 2 — Area and Delay Overhead, Q = 0.10 pC "
               "(paper: avg 45.34% area, 0.56% delay)\n";
  const auto rows = benchtool::run_suite(
      specs, library, core::ProtectionParams::q100(), /*custom_delta=*/false);
  benchtool::print_overhead_table(
      rows, &bench::BenchmarkSpec::table2_q100, std::cout);
  return 0;
}
