// Reproduces Table 4: summary comparison of this work against the gate
// resizing of [13] and the in-path CWSP of [15].
//
// Our rows are measured: the averages over Tables 1 and 2 for our
// approach, and our own implementations of the baselines run on a
// representative subset of the suite. The paper's cited numbers
// ([13]: 42.95% / 2.80% / 90%; [15]: 17.60% / 28.65% / 100%) are printed
// alongside.

#include <iostream>

#include "baselines/compare.hpp"
#include "support.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();

  // --- our approach: averages over Tables 1 and 2 ----------------------
  auto average_overheads = [&](const core::ProtectionParams& params,
                               auto member) {
    std::vector<bench::BenchmarkSpec> specs;
    for (const auto& spec : bench::overhead_benchmarks()) {
      if ((spec.*member).has_value()) specs.push_back(spec);
    }
    const auto rows = benchtool::run_suite(specs, library, params, false);
    double area = 0.0;
    double delay = 0.0;
    for (const auto& row : rows) {
      area += row.design.area_overhead_pct();
      delay += row.design.delay_overhead_pct();
    }
    return std::pair{area / rows.size(), delay / rows.size()};
  };

  const auto [area150, delay150] = average_overheads(
      core::ProtectionParams::q150(), &bench::BenchmarkSpec::table1_q150);
  const auto [area100, delay100] = average_overheads(
      core::ProtectionParams::q100(), &bench::BenchmarkSpec::table2_q100);
  const double our_area = 0.5 * (area150 + area100);
  const double our_delay = 0.5 * (delay150 + delay100);

  // --- baselines measured on a representative subset -------------------
  const char* subset[] = {"alu2", "C880", "dalu"};
  double anghel_area = 0.0, anghel_delay = 0.0;
  double resize_area = 0.0, resize_delay = 0.0, resize_cov = 0.0;
  for (const char* name : subset) {
    const auto gen =
        bench::generate_benchmark(bench::find_benchmark(name), library);
    const auto anghel = baselines::harden_anghel00(gen.netlist);
    anghel_area += anghel.area_overhead_pct();
    anghel_delay += anghel.delay_overhead_pct();
    baselines::GateResizingOptions opts;
    opts.samples = 200;
    const auto resize = baselines::harden_gate_resizing(gen.netlist, opts);
    resize_area += resize.report.area_overhead_pct();
    resize_delay += resize.report.delay_overhead_pct();
    resize_cov += resize.achieved_coverage_pct;
  }
  const double n = 3.0;

  TextTable table;
  table.set_header({"Technique", "Area Ovh % (ours)", "Area Ovh % (paper)",
                    "Delay Ovh % (ours)", "Delay Ovh % (paper)",
                    "Protection"});
  table.add_row({"This work (secondary-path CWSP)",
                 TextTable::num(our_area, 2), "42.33",
                 TextTable::num(our_delay, 2), "0.54", "100%"});
  table.add_row({"Gate resizing [13]", TextTable::num(resize_area / n, 2),
                 "42.95", TextTable::num(resize_delay / n, 2), "2.80",
                 TextTable::num(resize_cov / n, 0) + "%"});
  table.add_row({"In-path CWSP [15]", TextTable::num(anghel_area / n, 2),
                 "17.60", TextTable::num(anghel_delay / n, 2), "28.65",
                 "100%"});

  std::cout << "Table 4 — Summary vs [13] and [15]\n";
  table.print(std::cout);
  std::cout << "\n(baseline 'ours' columns: our reimplementations measured "
               "on {alu2, C880, dalu}; paper columns as published)\n";
  return 0;
}
