// Campaign-engine throughput, kernel speedup and determinism check.
//
// Part A (identity): runs one adversarial strike plan on alu2 through the
// legacy full-netlist EventSim, the scalar compiled kernel and the
// strike-lane kernel at every supported lane width and several worker
// counts, and verifies the JSON report stays byte-identical — the
// engine's core guarantee (neither parallelism, the fast path nor lane
// batching may change results).
//
// Part B (throughput): runs a large functional-heavy plan on an ISCAS85
// design (C880) with the scalar compiled kernel vs the strike-lane
// kernel, reporting strikes/second, lane occupancy (filled slots over
// offered slots, from the engine's metrics counters) and the lane/scalar
// speedup. Results are emitted to BENCH_campaign.json (path overridable
// via argv[1]) for ci/check-perf.sh's regression ratchet.
//
// Part C (schemes): runs the same C880 plan once per registered
// ProtectionScheme (cwsp, tmr, loco) on the lane kernel, checking each
// scheme's report stays byte-identical at jobs 1 vs 8 and reporting the
// scheme's throughput relative to CWSP — the cost of evaluating an
// alternative hardening technique through the registry.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bencharness/generator.hpp"
#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "common/metrics.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "cwsp/timing.hpp"
#include "scheme/scheme.hpp"
#include "sim/strike_lanes.hpp"

namespace {

using namespace cwsp;

struct RunStats {
  double seconds = 0.0;
  double strikes_per_second = 0.0;
  /// Filled lane slots over offered lane slots; -1 off the lane path.
  double lane_occupancy = -1.0;
  std::string json;
};

RunStats run_once(const campaign::CampaignEngine& engine,
                  const set::StrikePlan& plan, const Netlist& netlist,
                  Picoseconds period, const campaign::EngineOptions& options) {
  auto& registry = metrics::Registry::global();
  const std::uint64_t filled0 =
      registry.counter("campaign.lane_slots_filled").value();
  const std::uint64_t total0 =
      registry.counter("campaign.lane_slots_total").value();
  Stopwatch watch;
  const auto result = engine.run(plan, options);
  RunStats stats;
  stats.seconds = watch.elapsed_ms() / 1000.0;
  stats.strikes_per_second = static_cast<double>(plan.size()) / stats.seconds;
  const std::uint64_t filled =
      registry.counter("campaign.lane_slots_filled").value() - filled0;
  const std::uint64_t total =
      registry.counter("campaign.lane_slots_total").value() - total0;
  if (total > 0) {
    stats.lane_occupancy =
        static_cast<double>(filled) / static_cast<double>(total);
  }
  stats.json =
      campaign::format_campaign_json(result, plan, netlist, options, period);
  return stats;
}

struct Config {
  std::string kernel;  // "legacy", "scalar" or "lane-<width>"
  bool legacy = false;
  bool lanes = false;
  std::size_t lane_width = 0;  // 0 = ISA auto
  std::size_t jobs = 1;
};

campaign::EngineOptions options_for(const Config& config, std::uint64_t seed,
                                    std::size_t cycles) {
  campaign::EngineOptions options;
  options.seed = seed;
  options.cycles_per_run = cycles;
  options.jobs = config.jobs;
  options.use_legacy_kernel = config.legacy;
  options.use_lane_kernel = config.lanes;
  options.lane_width = config.lane_width;
  return options;
}

std::string occupancy_cell(double occupancy) {
  if (occupancy < 0.0) return "-";
  return TextTable::num(occupancy * 100.0, 1) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  const CellLibrary library = make_default_library();
  const auto params = core::ProtectionParams::q100();
  const sim::LaneIsa isa = sim::WideLogicSim::dispatched_isa();

  // ---- Part A: report identity across kernels, widths and job counts.
  const auto alu2_gen =
      bench::generate_benchmark(bench::find_benchmark("alu2"), library);
  const auto alu2 = bench::clone_with_output_flip_flops(alu2_gen.netlist);
  const Picoseconds alu2_period =
      std::max(core::hardened_clock_period(alu2_gen.measured_dmax, library),
               core::min_clock_period_for_delta(params));

  set::StrikePlanOptions plan_options;
  plan_options.functional_strikes = 48;
  plan_options.protection_path_strikes = 8;
  plan_options.clock_edge_strikes = 8;
  plan_options.out_of_envelope_strikes = 8;
  plan_options.cycles_per_run = 10;
  plan_options.clock_period = alu2_period;
  plan_options.out_of_envelope_width = params.delta + Picoseconds(400.0);
  const auto alu2_plan = set::build_strike_plan(alu2, plan_options, 2026);

  const campaign::CampaignEngine alu2_engine(alu2, params, alu2_period);

  std::vector<Config> identity_configs = {
      {"legacy", true, false, 0, 1},
      {"scalar", false, false, 0, 1},
      {"scalar", false, false, 0, 4},
  };
  for (const std::size_t width : sim::WideLogicSim::supported_lane_widths()) {
    identity_configs.push_back(
        {"lane-" + std::to_string(width), false, true, width, 1});
  }
  identity_configs.push_back({"lane-auto", false, true, 0, 8});

  TextTable identity_table;
  identity_table.set_header({"Kernel", "Jobs", "Wall s", "Strikes/s",
                             "Speedup", "Occupancy", "Report"});
  std::string baseline;
  double legacy_rate = 0.0;
  bool identical = true;
  for (const Config& config : identity_configs) {
    const auto stats = run_once(alu2_engine, alu2_plan, alu2, alu2_period,
                                options_for(config, 2026, 10));
    if (config.legacy) legacy_rate = stats.strikes_per_second;
    if (baseline.empty()) baseline = stats.json;
    const bool same = stats.json == baseline;
    identical = identical && same;
    identity_table.add_row(
        {config.kernel, std::to_string(config.jobs),
         TextTable::num(stats.seconds, 2),
         TextTable::num(stats.strikes_per_second, 1),
         TextTable::num(stats.strikes_per_second / legacy_rate, 1) + "x",
         occupancy_cell(stats.lane_occupancy),
         same ? "identical" : "DIVERGED"});
    if (!same) {
      std::cerr << "FATAL: report changed with kernel=" << config.kernel
                << " jobs=" << config.jobs << "\n";
      return 1;
    }
  }

  std::cout << "Part A — report identity on alu2 (plan: 48 functional + 8 "
               "protection-path + 8 clock-edge + 8 out-of-envelope, ISA "
            << isa.name << "):\n\n";
  identity_table.print(std::cout);
  std::cout << "\nReports are byte-identical across kernels, lane widths and "
               "job counts; wall-clock never feeds the report.\n\n";

  // ---- Part B: lane-kernel throughput on an ISCAS85 design.
  const auto c880_gen =
      bench::generate_benchmark(bench::find_benchmark("C880"), library);
  const auto c880 = bench::clone_with_output_flip_flops(c880_gen.netlist);
  const Picoseconds c880_period =
      std::max(core::hardened_clock_period(c880_gen.measured_dmax, library),
               core::min_clock_period_for_delta(params));

  set::StrikePlanOptions big_options;
  big_options.functional_strikes = 1920;
  big_options.protection_path_strikes = 0;
  big_options.clock_edge_strikes = 0;
  big_options.out_of_envelope_strikes = 128;
  big_options.cycles_per_run = 10;
  big_options.clock_period = c880_period;
  big_options.out_of_envelope_width = params.delta + Picoseconds(400.0);
  const auto c880_plan = set::build_strike_plan(c880, big_options, 2026);

  const campaign::CampaignEngine c880_engine(c880, params, c880_period);

  const std::vector<Config> throughput_configs = {
      {"scalar", false, false, 0, 1},
      {"lane-auto", false, true, 0, 1},
      {"lane-auto", false, true, 0, 8},
  };

  TextTable throughput_table;
  throughput_table.set_header({"Kernel", "Jobs", "Strikes", "Wall s",
                               "Strikes/s", "Speedup", "Occupancy", "Report"});
  std::string big_baseline;
  double scalar_rate = 0.0;
  double lane_j1_rate = 0.0;
  double lane_j1_occupancy = -1.0;
  std::ostringstream rows_json;
  bool first_row = true;
  for (const Config& config : throughput_configs) {
    const auto stats = run_once(c880_engine, c880_plan, c880, c880_period,
                                options_for(config, 2026, 10));
    if (!config.lanes) scalar_rate = stats.strikes_per_second;
    if (config.lanes && config.jobs == 1) {
      lane_j1_rate = stats.strikes_per_second;
      lane_j1_occupancy = stats.lane_occupancy;
    }
    if (big_baseline.empty()) big_baseline = stats.json;
    const bool same = stats.json == big_baseline;
    throughput_table.add_row(
        {config.kernel, std::to_string(config.jobs),
         std::to_string(c880_plan.size()), TextTable::num(stats.seconds, 2),
         TextTable::num(stats.strikes_per_second, 1),
         TextTable::num(stats.strikes_per_second / scalar_rate, 1) + "x",
         occupancy_cell(stats.lane_occupancy),
         same ? "identical" : "DIVERGED"});
    if (!same) {
      std::cerr << "FATAL: C880 report changed with kernel=" << config.kernel
                << " jobs=" << config.jobs << "\n";
      return 1;
    }
    if (!first_row) rows_json << ",\n";
    first_row = false;
    rows_json << "    {\"kernel\": \"" << config.kernel
              << "\", \"jobs\": " << config.jobs
              << ", \"strikes_per_second\": "
              << TextTable::num(stats.strikes_per_second, 1)
              << ", \"wall_s\": " << TextTable::num(stats.seconds, 3)
              << ", \"lane_occupancy\": "
              << (stats.lane_occupancy < 0.0
                      ? std::string("null")
                      : TextTable::num(stats.lane_occupancy, 4))
              << "}";
  }

  const double speedup = lane_j1_rate / scalar_rate;
  std::cout << "Part B — strike-lane throughput on C880 (ISCAS85, "
            << c880_plan.size() << " strikes, 1920 functional + 128 "
               "out-of-envelope):\n\n";
  throughput_table.print(std::cout);
  std::cout << "\nSingle-job lane speedup (lane-auto vs scalar compiled): "
            << TextTable::num(speedup, 1) << "x at "
            << occupancy_cell(lane_j1_occupancy) << " lane occupancy ("
            << isa.name << ", " << isa.lanes << " lanes).\n";

  // ---- Part C: per-scheme throughput through the registry.
  TextTable scheme_table;
  scheme_table.set_header({"Scheme", "Strikes/s (j8)", "vs cwsp",
                           "Deterministic"});
  std::ostringstream scheme_rows_json;
  bool scheme_first = true;
  bool schemes_identical = true;
  double cwsp_rate = 0.0;
  for (const scheme::ProtectionScheme* s : scheme::registered_schemes()) {
    campaign::EngineOptions j1 = options_for({"lane-auto", false, true, 0, 1},
                                             2026, 10);
    j1.scheme = s;
    campaign::EngineOptions j8 = j1;
    j8.jobs = 8;
    const auto one = run_once(c880_engine, c880_plan, c880, c880_period, j1);
    const auto eight = run_once(c880_engine, c880_plan, c880, c880_period, j8);
    const bool same = one.json == eight.json;
    schemes_identical = schemes_identical && same;
    if (std::string(s->name()) == "cwsp") {
      cwsp_rate = eight.strikes_per_second;
    }
    scheme_table.add_row(
        {s->name(), TextTable::num(eight.strikes_per_second, 1),
         TextTable::num(eight.strikes_per_second / cwsp_rate, 2) + "x",
         same ? "identical" : "DIVERGED"});
    if (!same) {
      std::cerr << "FATAL: scheme " << s->name()
                << " report changed between jobs=1 and jobs=8\n";
      return 1;
    }
    if (!scheme_first) scheme_rows_json << ",\n";
    scheme_first = false;
    scheme_rows_json << "    {\"scheme\": \"" << s->name()
                     << "\", \"strikes_per_second\": "
                     << TextTable::num(eight.strikes_per_second, 1)
                     << ", \"relative_to_cwsp\": "
                     << TextTable::num(
                            eight.strikes_per_second / cwsp_rate, 3)
                     << "}";
  }

  std::cout << "\nPart C — per-scheme throughput on C880 (lane-auto, jobs 8, "
               "single-set plan):\n\n";
  scheme_table.print(std::cout);
  std::cout << "\nEvery registered scheme keeps the jobs-independence "
               "invariant; relative cost is the verdict-resolution "
               "overhead.\n";

  // Machine-readable result for the CI perf ratchet (ci/check-perf.sh).
  const char* out_path = argc > 1 ? argv[1] : "BENCH_campaign.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"schema\": \"cwsp-bench-campaign-v1\",\n"
      << "  \"identity\": {\"design\": \"alu2\", \"configs\": "
      << identity_configs.size() << ", \"byte_identical\": "
      << (identical ? "true" : "false") << "},\n"
      << "  \"throughput\": {\n"
      << "    \"design\": \"C880\",\n"
      << "    \"suite\": \"ISCAS85\",\n"
      << "    \"strikes\": " << c880_plan.size() << ",\n"
      << "    \"kernel_isa\": \"" << isa.name << "\",\n"
      << "    \"kernel_lanes\": " << isa.lanes << ",\n"
      << "    \"rows\": [\n"
      << rows_json.str() << "\n    ],\n"
      << "    \"speedup_lane_vs_scalar\": " << TextTable::num(speedup, 2)
      << ",\n"
      << "    \"lane_occupancy\": "
      << (lane_j1_occupancy < 0.0 ? std::string("null")
                                  : TextTable::num(lane_j1_occupancy, 4))
      << "\n  },\n"
      << "  \"schemes\": {\n"
      << "    \"design\": \"C880\",\n"
      << "    \"byte_identical\": " << (schemes_identical ? "true" : "false")
      << ",\n"
      << "    \"rows\": [\n"
      << scheme_rows_json.str() << "\n    ]\n  }\n}\n";
  out.close();
  std::cout << "Wrote " << out_path << "\n";
  return 0;
}
