// Campaign-engine throughput and determinism check: runs the same
// adversarial strike plan at increasing worker counts, reports
// strikes/second, and verifies the JSON report stays byte-identical —
// the engine's core guarantee (parallelism must never change results).

#include <iostream>
#include <string>
#include <vector>

#include "bencharness/generator.hpp"
#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "cwsp/timing.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();
  const auto params = core::ProtectionParams::q100();

  const auto gen =
      bench::generate_benchmark(bench::find_benchmark("alu2"), library);
  const auto seq = bench::clone_with_output_flip_flops(gen.netlist);
  const Picoseconds period =
      std::max(core::hardened_clock_period(gen.measured_dmax, library),
               core::min_clock_period_for_delta(params));

  set::StrikePlanOptions plan_options;
  plan_options.functional_strikes = 48;
  plan_options.protection_path_strikes = 8;
  plan_options.clock_edge_strikes = 8;
  plan_options.out_of_envelope_strikes = 8;
  plan_options.cycles_per_run = 10;
  plan_options.clock_period = period;
  plan_options.out_of_envelope_width = params.delta + Picoseconds(400.0);
  const auto plan = set::build_strike_plan(seq, plan_options, 2026);

  const campaign::CampaignEngine engine(seq, params, period);

  TextTable table;
  table.set_header({"Jobs", "Strikes", "Wall s", "Strikes/s", "Coverage %",
                    "Report"});

  std::string baseline;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{8}}) {
    campaign::EngineOptions options;
    options.seed = 2026;
    options.cycles_per_run = 10;
    options.jobs = jobs;
    Stopwatch watch;
    const auto result = engine.run(plan, options);
    const double seconds = watch.elapsed_ms() / 1000.0;
    const std::string json =
        campaign::format_campaign_json(result, plan, seq, options, period);
    if (baseline.empty()) baseline = json;
    table.add_row({std::to_string(jobs), std::to_string(plan.size()),
                   TextTable::num(seconds, 2),
                   TextTable::num(static_cast<double>(plan.size()) / seconds,
                                  1),
                   TextTable::num(result.report.protected_coverage_pct(), 1),
                   json == baseline ? "identical" : "DIVERGED"});
    if (json != baseline) {
      std::cerr << "FATAL: report changed with jobs=" << jobs << "\n";
      return 1;
    }
  }

  std::cout << "Campaign engine scaling on alu2 (plan: 48 functional + 8 "
               "protection-path + 8 clock-edge + 8 out-of-envelope):\n\n";
  table.print(std::cout);
  std::cout << "\nReports are byte-identical across job counts; wall-clock "
               "never feeds the report.\n";
  return 0;
}
