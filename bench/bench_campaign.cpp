// Campaign-engine throughput, kernel speedup and determinism check: runs
// the same adversarial strike plan on the legacy full-netlist EventSim
// and on the compiled kernel (cone-restricted propagation + golden
// caching) at increasing worker counts. Reports strikes/second and the
// compiled/legacy speedup, and verifies the JSON report stays
// byte-identical across kernels AND job counts — the engine's core
// guarantee (neither parallelism nor the fast path may change results).

#include <iostream>
#include <string>
#include <vector>

#include "bencharness/generator.hpp"
#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "cwsp/timing.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();
  const auto params = core::ProtectionParams::q100();

  const auto gen =
      bench::generate_benchmark(bench::find_benchmark("alu2"), library);
  const auto seq = bench::clone_with_output_flip_flops(gen.netlist);
  const Picoseconds period =
      std::max(core::hardened_clock_period(gen.measured_dmax, library),
               core::min_clock_period_for_delta(params));

  set::StrikePlanOptions plan_options;
  plan_options.functional_strikes = 48;
  plan_options.protection_path_strikes = 8;
  plan_options.clock_edge_strikes = 8;
  plan_options.out_of_envelope_strikes = 8;
  plan_options.cycles_per_run = 10;
  plan_options.clock_period = period;
  plan_options.out_of_envelope_width = params.delta + Picoseconds(400.0);
  const auto plan = set::build_strike_plan(seq, plan_options, 2026);

  const campaign::CampaignEngine engine(seq, params, period);

  TextTable table;
  table.set_header({"Kernel", "Jobs", "Strikes", "Wall s", "Strikes/s",
                    "Speedup", "Coverage %", "Report"});

  struct Config {
    const char* kernel;
    bool legacy;
    std::size_t jobs;
  };
  const Config configs[] = {
      {"legacy", true, 1},    {"compiled", false, 1}, {"compiled", false, 2},
      {"compiled", false, 4}, {"compiled", false, 8},
  };

  std::string baseline;
  double legacy_rate = 0.0;
  double compiled_j1_rate = 0.0;
  for (const Config& config : configs) {
    campaign::EngineOptions options;
    options.seed = 2026;
    options.cycles_per_run = 10;
    options.jobs = config.jobs;
    options.use_legacy_kernel = config.legacy;
    Stopwatch watch;
    const auto result = engine.run(plan, options);
    const double seconds = watch.elapsed_ms() / 1000.0;
    const double rate = static_cast<double>(plan.size()) / seconds;
    if (config.legacy) legacy_rate = rate;
    if (!config.legacy && config.jobs == 1) compiled_j1_rate = rate;
    const std::string json =
        campaign::format_campaign_json(result, plan, seq, options, period);
    if (baseline.empty()) baseline = json;
    table.add_row({config.kernel, std::to_string(config.jobs),
                   std::to_string(plan.size()), TextTable::num(seconds, 2),
                   TextTable::num(rate, 1),
                   TextTable::num(rate / legacy_rate, 1) + "x",
                   TextTable::num(result.report.protected_coverage_pct(), 1),
                   json == baseline ? "identical" : "DIVERGED"});
    if (json != baseline) {
      std::cerr << "FATAL: report changed with kernel=" << config.kernel
                << " jobs=" << config.jobs << "\n";
      return 1;
    }
  }

  std::cout << "Campaign engine scaling on alu2 (plan: 48 functional + 8 "
               "protection-path + 8 clock-edge + 8 out-of-envelope):\n\n";
  table.print(std::cout);
  std::cout << "\nSingle-job kernel speedup (compiled vs legacy): "
            << TextTable::num(compiled_j1_rate / legacy_rate, 1) << "x\n";
  std::cout << "Reports are byte-identical across kernels and job counts; "
               "wall-clock never feeds the report.\n";
  return 0;
}
