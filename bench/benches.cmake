# Included from the top-level CMakeLists so that build/bench/ contains
# exactly the bench executables (no CMake clutter), letting
# `for b in build/bench/*; do $b; done` run the whole suite.

add_library(bench_support STATIC ${CMAKE_SOURCE_DIR}/bench/support.cpp)
target_link_libraries(bench_support PUBLIC cwsp::bencharness cwsp::core)
target_include_directories(bench_support PUBLIC ${CMAKE_SOURCE_DIR}/bench)

function(cwsp_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

cwsp_add_bench(bench_table1 bench_support)
cwsp_add_bench(bench_table2 bench_support)
cwsp_add_bench(bench_table3 bench_support)
cwsp_add_bench(bench_table4 bench_support cwsp::baselines)
cwsp_add_bench(bench_fig6 cwsp::spice)
cwsp_add_bench(bench_coverage cwsp::bencharness cwsp::core)
cwsp_add_bench(bench_timing cwsp::core)
cwsp_add_bench(bench_baselines cwsp::baselines cwsp::bencharness)
cwsp_add_bench(bench_perf cwsp::baselines cwsp::bencharness cwsp::sim benchmark::benchmark)
cwsp_add_bench(bench_ser cwsp::set cwsp::core cwsp::bencharness)
cwsp_add_bench(bench_ablation cwsp::baselines cwsp::bencharness cwsp::spice)
cwsp_add_bench(bench_scaling cwsp::set)
cwsp_add_bench(bench_tuning cwsp::set cwsp::bencharness cwsp::core)
cwsp_add_bench(bench_campaign cwsp::campaign cwsp::bencharness cwsp::sim)
cwsp_add_bench(bench_spice cwsp::characterize cwsp::spice)
cwsp_add_bench(bench_service cwsp::service cwsp::bencharness)
