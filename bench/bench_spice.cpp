// MiniSpice solver throughput and robustness baseline. Emits one JSON
// object (stdout) with:
//   - points_per_s: accepted integration points per wall-clock second on
//     a representative strike-transient workload,
//   - retry_rate: rejected / attempted steps across a pathological
//     workload that exercises the recovery ladder,
//   - fallback_rate: calibrated-fallback arcs / total arcs when the
//     characterization is run with a starved Newton budget (1.0 means the
//     degradation path triggers for every arc — the expected value; the
//     healthy-budget rate is asserted to be 0 separately).
// CI's perf-smoke job redirects this to BENCH_spice.json and uploads it
// so regressions in solver speed or recovery behavior are visible per-PR.

#include <chrono>
#include <iostream>

#include "cell/characterize.hpp"
#include "spice/subckt.hpp"
#include "spice/transient.hpp"

namespace {

using namespace cwsp;

/// The diode-inrush circuit from the recovery test-suite: overshoots into
/// exp() overflow at the nominal dt, forcing rejected steps and dt
/// subdivision.
spice::Circuit make_inrush_circuit() {
  spice::Circuit c;
  const int d = c.node("d");
  c.add_current_source(
      "I1", spice::kGround, d,
      spice::SourceFunction::pulse(0.0, 2.0, 5.0, 1.0, 1e6, 1.0));
  c.add_resistor("R1", d, spice::kGround, Kiloohms(100.0));
  c.add_capacitor("C1", d, spice::kGround, Femtofarads(0.05));
  spice::DiodeParams params;
  params.n_vt = 0.005;
  params.v_linear = 10.0;
  c.add_diode("D1", d, spice::kGround, params);
  return c;
}

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;

  // --- Throughput: repeated strike transients on the inverter harness.
  constexpr int kStrikeRuns = 8;
  spice::SolverDiagnostics throughput;
  const auto t0 = Clock::now();
  for (int i = 0; i < kStrikeRuns; ++i) {
    const double q = 80.0 + 10.0 * i;
    spice::SolverDiagnostics diag;
    (void)spice::strike_waveform(Femtocoulombs(q), {}, 1500.0, &diag);
    throughput.merge(diag);
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double points_per_s =
      seconds > 0.0 ? static_cast<double>(throughput.steps) / seconds : 0.0;

  // --- Retry rate: pathological inrush circuit, recovery ladder active.
  spice::TransientOptions stress;
  stress.t_stop_ps = 20.0;
  stress.dt_ps = 1.0;
  stress.v_step_limit = 50.0;
  spice::Circuit inrush = make_inrush_circuit();
  const int d = inrush.node("d");
  const auto stressed = spice::try_run_transient(inrush, stress, {d});
  const auto attempted =
      stressed.diagnostics.steps + stressed.diagnostics.rejected_steps;
  const double retry_rate =
      attempted > 0
          ? static_cast<double>(stressed.diagnostics.rejected_steps) /
                static_cast<double>(attempted)
          : 0.0;

  // --- Fallback rate: characterization with a starved Newton budget.
  CharacterizeOptions starved;
  starved.include_cwsp = false;
  starved.transient.max_newton_iterations = 1;
  starved.transient.enable_recovery = false;  // no ladder: honest fallback
  const auto report = characterize_library(make_default_library(), starved);
  const double fallback_rate =
      report.arcs.empty()
          ? 0.0
          : static_cast<double>(report.fallback_count()) /
                static_cast<double>(report.arcs.size());

  std::cout << "{\n"
            << "  \"benchmark\": \"bench_spice\",\n"
            << "  \"strike_runs\": " << kStrikeRuns << ",\n"
            << "  \"accepted_points\": " << throughput.steps << ",\n"
            << "  \"elapsed_s\": " << seconds << ",\n"
            << "  \"points_per_s\": " << points_per_s << ",\n"
            << "  \"stress_attempted_steps\": " << attempted << ",\n"
            << "  \"stress_rejected_steps\": "
            << stressed.diagnostics.rejected_steps << ",\n"
            << "  \"retry_rate\": " << retry_rate << ",\n"
            << "  \"starved_arcs\": " << report.arcs.size() << ",\n"
            << "  \"starved_fallbacks\": " << report.fallback_count() << ",\n"
            << "  \"fallback_rate\": " << fallback_rate << "\n"
            << "}\n";

  // Sanity: the workload must behave as designed, or the numbers above
  // measure nothing. Converging strike runs, recovering stress runs, and
  // a fully-degraded starved characterization.
  if (!throughput.converged || !stressed.diagnostics.converged ||
      stressed.diagnostics.rejected_steps == 0 ||
      report.fallback_count() != report.arcs.size()) {
    std::cerr << "bench_spice: workload invariants violated\n";
    return 1;
  }
  return 0;
}
