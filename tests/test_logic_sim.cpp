#include "sim/logic_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp::sim {
namespace {

class LogicSimTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(LogicSimTest, CombinationalTruth) {
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(s)
OUTPUT(c)
s = XOR(a, b)
c = AND(a, b)
)",
                                    lib_);
  LogicSim sim(n);
  const bool cases[4][4] = {
      // a, b, s, c
      {false, false, false, false},
      {true, false, true, false},
      {false, true, true, false},
      {true, true, false, true},
  };
  for (const auto& tc : cases) {
    sim.set_inputs({tc[0], tc[1]});
    sim.evaluate();
    const auto out = sim.output_values();
    EXPECT_EQ(out[0], tc[2]);
    EXPECT_EQ(out[1], tc[3]);
  }
}

TEST_F(LogicSimTest, ToggleFlipFlop) {
  const auto n = parse_bench_string(R"(
INPUT(en)
OUTPUT(q)
d = XOR(en, q)
q = DFF(d)
)",
                                    lib_);
  LogicSim sim(n);
  bool expected = false;
  for (int cycle = 0; cycle < 6; ++cycle) {
    sim.step({true});
    expected = !expected;
    EXPECT_EQ(sim.ff_state()[0], expected) << "cycle " << cycle;
  }
  // With enable low the state holds.
  const bool held = sim.ff_state()[0];
  sim.step({false});
  EXPECT_EQ(sim.ff_state()[0], held);
}

TEST_F(LogicSimTest, ShiftRegister) {
  const auto n = parse_bench_string(R"(
INPUT(d_in)
OUTPUT(q2)
q0 = DFF(d_in)
q1 = DFF(q0)
q2 = DFF(q1)
)",
                                    lib_);
  LogicSim sim(n);
  const std::vector<bool> pattern{true, false, true, true, false};
  std::vector<bool> seen;
  for (bool bit : pattern) {
    sim.set_inputs({bit});
    sim.evaluate();
    seen.push_back(sim.output_values()[0]);
    sim.clock();
  }
  // q2 lags d_in by 3 cycles (output observed before clocking).
  EXPECT_EQ(seen[3], pattern[0]);
  EXPECT_EQ(seen[4], pattern[1]);
}

TEST_F(LogicSimTest, ConstantsPropagate) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
one = VDD
y = AND(a, one)
)",
                                    lib_);
  LogicSim sim(n);
  sim.set_inputs({true});
  sim.evaluate();
  EXPECT_TRUE(sim.output_values()[0]);
  sim.set_inputs({false});
  sim.evaluate();
  EXPECT_FALSE(sim.output_values()[0]);
}

TEST_F(LogicSimTest, SetFfStateOverrides) {
  const auto n = parse_bench_string(R"(
INPUT(x)
OUTPUT(y)
y = AND(x, q)
q = DFF(x)
)",
                                    lib_);
  LogicSim sim(n);
  sim.set_ff_state({true});
  sim.set_inputs({true});
  sim.evaluate();
  EXPECT_TRUE(sim.output_values()[0]);
}

TEST_F(LogicSimTest, WrongInputCountRejected) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(a)
)",
                                    lib_);
  LogicSim sim(n);
  EXPECT_THROW(sim.set_inputs({true, false}), Error);
}

}  // namespace
}  // namespace cwsp::sim
