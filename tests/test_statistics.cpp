#include "common/statistics.hpp"

#include <gtest/gtest.h>

namespace cwsp {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MinMax) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(SampleSet, UnsortedInput) {
  SampleSet s;
  s.add(30.0);
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 20.0);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)(s.percentile(50)), Error);
}

}  // namespace
}  // namespace cwsp
