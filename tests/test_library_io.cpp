#include "cell/library_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cwsp {
namespace {

constexpr const char* kMiniLib = R"(
# two-cell technology for testing
library testtech {
  wire_cap_per_fanout 0.5
  ff regular  { setup 50 clkq 80 hold 6 area_units 24 dcap 1.5 rdrive 5.0 }
  ff modified { setup 45 clkq 90 hold 6 area_units 24 dcap 1.5 rdrive 5.0 }
  cell INV   { kind INV   intrinsic 10 rdrive 5.0 cin 1.0 inertial 12 }
  cell NAND2 { kind NAND2 intrinsic 15 rdrive 6.0 cin 1.2 inertial 16 }
}
)";

TEST(LibraryIo, ParsesMiniLibrary) {
  const auto lib = parse_library_string(kMiniLib);
  EXPECT_EQ(lib.size(), 2u);
  EXPECT_DOUBLE_EQ(lib.wire_capacitance_per_fanout().value(), 0.5);
  EXPECT_DOUBLE_EQ(lib.regular_ff().setup.value(), 50.0);
  EXPECT_DOUBLE_EQ(lib.modified_ff().clk_to_q.value(), 90.0);

  const Cell& inv = lib.cell(*lib.find("INV"));
  EXPECT_EQ(inv.kind(), CellKind::kInv);
  EXPECT_DOUBLE_EQ(inv.intrinsic_delay().value(), 10.0);
  EXPECT_TRUE(inv.evaluate(0));
  EXPECT_FALSE(inv.evaluate(1));
  // Transistor composition inferred from the kind.
  EXPECT_EQ(inv.devices().size(), 2u);
  EXPECT_EQ(lib.cell(*lib.find("NAND2")).devices().size(), 4u);
}

TEST(LibraryIo, DefaultLibraryRoundTrips) {
  const auto original = make_default_library();
  std::ostringstream os;
  write_library(original, "default65", os);
  const auto reparsed = parse_library_string(os.str());

  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Cell& a = original.cell(CellId{i});
    const auto id = reparsed.find(a.name());
    ASSERT_TRUE(id.has_value()) << a.name();
    const Cell& b = reparsed.cell(*id);
    EXPECT_EQ(b.kind(), a.kind());
    EXPECT_DOUBLE_EQ(b.intrinsic_delay().value(), a.intrinsic_delay().value());
    EXPECT_DOUBLE_EQ(b.drive_resistance().value(),
                     a.drive_resistance().value());
    EXPECT_DOUBLE_EQ(b.input_capacitance().value(),
                     a.input_capacitance().value());
    EXPECT_DOUBLE_EQ(b.inertial_delay().value(), a.inertial_delay().value());
    EXPECT_DOUBLE_EQ(b.active_area().value(), a.active_area().value());
    EXPECT_EQ(b.truth_table(), a.truth_table());
  }
  EXPECT_NEAR(reparsed.regular_ff().area.value(),
              original.regular_ff().area.value(), 1e-12);
}

TEST(LibraryIo, MissingFfRejected) {
  EXPECT_THROW(parse_library_string(R"(
library broken {
  cell INV { kind INV intrinsic 10 rdrive 5.0 cin 1.0 inertial 12 }
}
)"),
               Error);
}

TEST(LibraryIo, UnknownKindRejected) {
  EXPECT_THROW(parse_library_string(R"(
library broken {
  ff regular  { setup 50 clkq 80 hold 6 area_units 24 dcap 1.5 rdrive 5.0 }
  ff modified { setup 45 clkq 90 hold 6 area_units 24 dcap 1.5 rdrive 5.0 }
  cell FROB { kind FROB17 intrinsic 10 rdrive 5.0 cin 1.0 inertial 12 }
}
)"),
               Error);
}

TEST(LibraryIo, MissingCellFieldRejected) {
  EXPECT_THROW(parse_library_string(R"(
library broken {
  ff regular  { setup 50 clkq 80 hold 6 area_units 24 dcap 1.5 rdrive 5.0 }
  ff modified { setup 45 clkq 90 hold 6 area_units 24 dcap 1.5 rdrive 5.0 }
  cell INV { kind INV rdrive 5.0 cin 1.0 inertial 12 }
}
)"),
               Error);
}

TEST(LibraryIo, MalformedNumberRejected) {
  EXPECT_THROW(parse_library_string(R"(
library broken {
  wire_cap_per_fanout lots
  ff regular  { setup 50 clkq 80 hold 6 area_units 24 dcap 1.5 rdrive 5.0 }
  ff modified { setup 45 clkq 90 hold 6 area_units 24 dcap 1.5 rdrive 5.0 }
}
)"),
               Error);
}

TEST(LibraryIo, KindNameRoundTrip) {
  EXPECT_EQ(cell_kind_from_string("NAND3"), CellKind::kNand3);
  EXPECT_EQ(cell_kind_from_string("MUX2"), CellKind::kMux2);
  EXPECT_THROW((void)(cell_kind_from_string("NAND17")), Error);
}

}  // namespace
}  // namespace cwsp
