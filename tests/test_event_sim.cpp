#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp::sim {
namespace {

using namespace cwsp::literals;

class EventSimTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();

  // a chain: in -> INV -> INV -> d -> DFF
  Netlist chain_ = parse_bench_string(R"(
INPUT(in)
OUTPUT(q)
t1 = NOT(in)
d  = NOT(t1)
q  = DFF(d)
)",
                                      lib_);
};

TEST_F(EventSimTest, NoStrikeMatchesLogicSim) {
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q)
t1 = NAND(a, b)
t2 = XOR(t1, a)
q  = DFF(t2)
)",
                                    lib_);
  EventSim esim(n);
  for (unsigned bits = 0; bits < 4; ++bits) {
    const std::vector<bool> pis{(bits & 1) != 0, (bits & 2) != 0};
    const auto r = esim.simulate_cycle(pis, {false}, 2000.0_ps, std::nullopt);
    EXPECT_EQ(r.golden_d, r.latched_d) << "bits=" << bits;
    EXPECT_FALSE(r.any_ff_corrupted());
  }
}

TEST_F(EventSimTest, GlitchPropagatesWithDelay) {
  EventSim esim(chain_);
  // Strike on t1 (output of first inverter): a 300 ps pulse from t=500.
  set::Strike strike;
  strike.node = *chain_.find_net("t1");
  strike.start = 500.0_ps;
  strike.width = 300.0_ps;

  const auto w =
      esim.net_waveform({true}, {false}, strike, *chain_.find_net("d"));
  // The pulse appears on d shifted by the second inverter's delay.
  ASSERT_EQ(w.transitions().size(), 2u);
  EXPECT_GT(w.transitions()[0], 500.0);
  EXPECT_NEAR(w.transitions()[1] - w.transitions()[0], 300.0, 1e-9);
}

TEST_F(EventSimTest, LatchingWindowMasking) {
  EventSim esim(chain_);
  set::Strike strike;
  strike.node = *chain_.find_net("t1");
  strike.width = 300.0_ps;

  // Glitch well before capture: filtered by latching-window masking.
  strike.start = 200.0_ps;
  auto r = esim.simulate_cycle({true}, {false}, 2000.0_ps, strike);
  EXPECT_FALSE(r.any_ff_corrupted());

  // Glitch spanning the capture edge: corrupts the latch.
  strike.start = 1900.0_ps;
  r = esim.simulate_cycle({true}, {false}, 2000.0_ps, strike);
  EXPECT_TRUE(r.any_ff_corrupted());
  EXPECT_NE(r.latched_d[0], r.golden_d[0]);
}

TEST_F(EventSimTest, LogicalMaskingBlocksGlitch) {
  // Glitch on one AND input while the other input is 0 (controlling).
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q)
t1 = NOT(a)
d  = AND(t1, b)
q  = DFF(d)
)",
                                    lib_);
  EventSim esim(n);
  set::Strike strike;
  strike.node = *n.find_net("t1");
  strike.start = 100.0_ps;
  strike.width = 400.0_ps;

  // b = 0 masks the glitch entirely.
  auto w = esim.net_waveform({false, false}, {false}, strike,
                             *n.find_net("d"));
  EXPECT_TRUE(w.is_constant());

  // b = 1 lets it through.
  w = esim.net_waveform({false, true}, {false}, strike, *n.find_net("d"));
  EXPECT_FALSE(w.is_constant());
}

TEST_F(EventSimTest, ElectricalMaskingFiltersNarrowGlitch) {
  EventSim esim(chain_);
  set::Strike strike;
  strike.node = *chain_.find_net("t1");
  strike.start = 500.0_ps;
  strike.width = 5.0_ps;  // narrower than the INV inertial delay (10 ps)

  const auto w =
      esim.net_waveform({true}, {false}, strike, *chain_.find_net("d"));
  EXPECT_TRUE(w.is_constant());
}

TEST_F(EventSimTest, StrikeOnFfOutputPropagatesDownstream) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(q2)
q1 = DFF(a)
d2 = NOT(q1)
q2 = DFF(d2)
)",
                                    lib_);
  EventSim esim(n);
  set::Strike strike;
  strike.node = *n.find_net("q1");
  strike.start = 1950.0_ps;
  strike.width = 300.0_ps;  // spans capture at 2000 ps

  const auto r = esim.simulate_cycle({false}, {false, false}, 2000.0_ps,
                                     strike);
  // d2 = NOT(q1): the glitch reaches the second FF's D across the capture.
  EXPECT_TRUE(r.any_ff_corrupted());
}

TEST_F(EventSimTest, ApertureViolationFlagged) {
  EventSim esim(chain_);
  const double setup = lib_.regular_ff().setup.value();
  set::Strike strike;
  strike.node = *chain_.find_net("t1");
  strike.width = 100.0_ps;
  // Place the glitch so its trailing edge lands inside [T-setup, T].
  strike.start = Picoseconds(2000.0 - setup - 100.0 + 10.0);

  const auto r = esim.simulate_cycle({true}, {false}, 2000.0_ps, strike);
  EXPECT_TRUE(r.aperture_violation[0]);
}

TEST_F(EventSimTest, ReconvergentGlitchCancellation) {
  // A glitch reaching both XOR inputs with equal delays cancels (the two
  // inversions arrive simultaneously through symmetric paths).
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(q)
s  = NOT(a)
p1 = NOT(s)
p2 = NOT(s)
d  = XOR(p1, p2)
q  = DFF(d)
)",
                                    lib_);
  EventSim esim(n);
  set::Strike strike;
  strike.node = *n.find_net("s");
  strike.start = 300.0_ps;
  strike.width = 400.0_ps;
  const auto w = esim.net_waveform({true}, {false}, strike, *n.find_net("d"));
  // p1/p2 drive identical loads → equal delays → XOR output unchanged.
  EXPECT_TRUE(w.is_constant());
}

}  // namespace
}  // namespace cwsp::sim
