#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "sta/sta.hpp"

namespace cwsp {
namespace {

class WorstPathsTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  // Three endpoints with clearly ordered depths: y3 > y2 > y1.
  Netlist netlist_ = parse_bench_string(R"(
INPUT(a)
OUTPUT(y1)
OUTPUT(y2)
OUTPUT(y3)
t1 = NOT(a)
t2 = NOT(t1)
t3 = NOT(t2)
y1 = BUFF(t1)
y2 = BUFF(t2)
y3 = BUFF(t3)
)",
                                        lib_);
};

TEST_F(WorstPathsTest, SortedByArrivalDescending) {
  const auto r = run_sta(netlist_);
  const auto paths = worst_paths(netlist_, r, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(netlist_.net(paths[0].endpoint).name, "y3");
  EXPECT_EQ(netlist_.net(paths[1].endpoint).name, "y2");
  EXPECT_EQ(netlist_.net(paths[2].endpoint).name, "y1");
  EXPECT_GT(paths[0].arrival.value(), paths[1].arrival.value());
  EXPECT_GT(paths[1].arrival.value(), paths[2].arrival.value());
}

TEST_F(WorstPathsTest, FirstPathMatchesCriticalPath) {
  const auto r = run_sta(netlist_);
  const auto paths = worst_paths(netlist_, r, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].nets, r.critical_path);
  EXPECT_DOUBLE_EQ(paths[0].arrival.value(), r.dmax.value());
}

TEST_F(WorstPathsTest, PathsStartAtSources) {
  const auto r = run_sta(netlist_);
  for (const auto& path : worst_paths(netlist_, r, 3)) {
    ASSERT_FALSE(path.nets.empty());
    EXPECT_EQ(netlist_.net(path.nets.front()).driver_kind,
              DriverKind::kPrimaryInput);
    EXPECT_EQ(path.nets.back(), path.endpoint);
  }
}

TEST_F(WorstPathsTest, KLargerThanEndpointsClamps) {
  const auto r = run_sta(netlist_);
  EXPECT_EQ(worst_paths(netlist_, r, 100).size(), 3u);
}

TEST_F(WorstPathsTest, FfDEndpointsIncludedOnce) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(d)
OUTPUT(q)
d = NOT(a)
q = DFF(d)
)",
                                    lib_);
  const auto r = run_sta(n);
  // d is both a PO and the FF D pin — it must appear exactly once; q (a
  // register output) is not a combinational endpoint.
  const auto paths = worst_paths(n, r, 10);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(n.net(paths[0].endpoint).name, "d");
}

}  // namespace
}  // namespace cwsp
