#include "netlist/analysis.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist diamond_ = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
l = NOT(a)
r = BUFF(a)
m = AND(l, r)
y = NOT(m)
)",
                                        lib_, "diamond");
};

TEST_F(AnalysisTest, LogicDepth) {
  const auto info = compute_logic_depth(diamond_);
  EXPECT_EQ(info.of(*diamond_.find_net("a")), 0);
  EXPECT_EQ(info.of(*diamond_.find_net("l")), 1);
  EXPECT_EQ(info.of(*diamond_.find_net("m")), 2);
  EXPECT_EQ(info.of(*diamond_.find_net("y")), 3);
  EXPECT_EQ(info.max_depth, 3);
}

TEST_F(AnalysisTest, DepthWithFlipFlopBoundary) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
d = NOT(a)
q = DFF(d)
y = NOT(q)
)",
                                    lib_);
  const auto info = compute_logic_depth(n);
  EXPECT_EQ(info.of(*n.find_net("q")), 0);  // FF Q restarts at depth 0
  EXPECT_EQ(info.of(*n.find_net("y")), 1);
}

TEST_F(AnalysisTest, ConstantConeDepthUnreachable) {
  Netlist n(lib_, "c");
  const NetId one = n.add_constant(true, "one");
  const NetId zero = n.add_constant(false, "zero");
  const GateId g = n.add_gate(lib_.cell_for(CellKind::kAnd2), {one, zero},
                              "dead");
  n.mark_primary_output(n.gate(g).output);
  const auto info = compute_logic_depth(n);
  EXPECT_EQ(info.of(n.gate(g).output), -1);
}

TEST_F(AnalysisTest, FanoutStats) {
  const auto stats = compute_fanout_stats(diamond_);
  // `a` drives 2 pins; l, r, m drive 1 each; y drives 0 (PO only).
  EXPECT_EQ(stats.max_fanout, 2u);
  EXPECT_EQ(stats.histogram[1], 3u);
  EXPECT_EQ(stats.histogram[2], 1u);
  EXPECT_NEAR(stats.mean_fanout, 5.0 / 4.0, 1e-12);
}

TEST_F(AnalysisTest, ConeOfInfluence) {
  const auto cone = cone_of_influence(diamond_, *diamond_.find_net("m"));
  // m's cone: l, r, m — not y.
  EXPECT_EQ(cone.size(), 3u);
  for (GateId g : cone) {
    EXPECT_NE(diamond_.net(diamond_.gate(g).output).name, "y");
  }
}

TEST_F(AnalysisTest, ConeIsTopologicallyOrdered) {
  const auto cone = cone_of_influence(diamond_, *diamond_.find_net("y"));
  EXPECT_EQ(cone.size(), 4u);
  // AND gate (m) must come after its inputs l and r.
  std::size_t pos_m = 0;
  std::size_t pos_l = 0;
  for (std::size_t i = 0; i < cone.size(); ++i) {
    const auto& name = diamond_.net(diamond_.gate(cone[i]).output).name;
    if (name == "m") pos_m = i;
    if (name == "l") pos_l = i;
  }
  EXPECT_GT(pos_m, pos_l);
}

TEST_F(AnalysisTest, TransitiveFanout) {
  const auto fanout = transitive_fanout(diamond_, *diamond_.find_net("a"));
  EXPECT_EQ(fanout.size(), 4u);  // l, r, m, y
  const auto from_m = transitive_fanout(diamond_, *diamond_.find_net("m"));
  EXPECT_EQ(from_m.size(), 1u);  // just y
}

TEST_F(AnalysisTest, KindHistogram) {
  const auto hist = kind_histogram(diamond_);
  // diamond: 2x INV (l, y), 1x BUF, 1x AND2 — INV first (descending).
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0].cell_name, "INV");
  EXPECT_EQ(hist[0].count, 2u);
  std::size_t total = 0;
  for (const auto& kc : hist) total += kc.count;
  EXPECT_EQ(total, diamond_.num_gates());
}

TEST_F(AnalysisTest, FanoutStopsAtFlipFlops) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
d = NOT(a)
q = DFF(d)
y = NOT(q)
)",
                                    lib_);
  // Transitive fanout follows gates only; the FF boundary ends the cone.
  const auto fanout = transitive_fanout(n, *n.find_net("a"));
  EXPECT_EQ(fanout.size(), 1u);  // d only
}

}  // namespace
}  // namespace cwsp
