// §3.3 remark reproduction: the protection logic's equal P/N width sizing
// ("PMOS gate widths are made the same as NMOS gate widths") shifts the
// inverter threshold and costs noise margin — the paper measured a 66 mV
// reduction and argues it is harmless because the skewed sizing is only
// used on the (SET-immune) secondary path.

#include <gtest/gtest.h>

#include "spice/subckt.hpp"

namespace cwsp::spice {
namespace {

TEST(NoiseMargin, BalancedInverterIsNearSymmetric) {
  // Wp = 2·Wn compensates the mobility ratio → threshold near VDD/2.
  const auto nm = measure_noise_margins(2.0, 1.0);
  EXPECT_NEAR(nm.switch_point.value(), 0.5, 0.05);
  EXPECT_GT(nm.nm_low.value(), 0.2);
  EXPECT_GT(nm.nm_high.value(), 0.2);
  EXPECT_NEAR(nm.nm_low.value(), nm.nm_high.value(), 0.1);
}

TEST(NoiseMargin, EqualWidthSizingShiftsThresholdDown) {
  const auto balanced = measure_noise_margins(2.0, 1.0);
  const auto equal = measure_noise_margins(1.0, 1.0);
  // Weaker pull-up → lower switching threshold.
  EXPECT_LT(equal.switch_point.value(), balanced.switch_point.value());
}

TEST(NoiseMargin, EqualWidthSizingCostsTensOfMillivolts) {
  // The paper reports a 66 mV reduction; our first-order devices land in
  // the same few-tens-of-mV regime on the degraded side.
  const auto balanced = measure_noise_margins(2.0, 1.0);
  const auto equal = measure_noise_margins(1.0, 1.0);
  const double loss = balanced.nm_low.value() - equal.nm_low.value();
  EXPECT_GT(loss, 0.02);
  EXPECT_LT(loss, 0.15);
}

TEST(NoiseMargin, MarginsWithinSupply) {
  for (double wp : {1.0, 2.0, 4.0}) {
    const auto nm = measure_noise_margins(wp, 1.0);
    EXPECT_GE(nm.nm_low.value(), 0.0);
    EXPECT_GE(nm.nm_high.value(), 0.0);
    EXPECT_LT(nm.nm_low.value() + nm.nm_high.value(), 1.0);
  }
}

}  // namespace
}  // namespace cwsp::spice
