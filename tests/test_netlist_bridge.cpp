// Cross-layer validation: the same structure simulated at transistor
// level (MiniSpice) and at gate level (EventSim) must agree on logic
// values and, to first order, on propagated SET glitch widths.

#include "spice/netlist_bridge.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "sim/event_sim.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp::spice {
namespace {

class NetlistBridgeTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  SpiceTech tech_;
};

TEST_F(NetlistBridgeTest, StaticLevelsMatchLogicSim) {
  const auto netlist = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y1)
OUTPUT(y2)
t1 = NAND(a, b)
t2 = NOR(a, t1)
y1 = AND(t1, b)
y2 = OR(t2, a)
)",
                                          lib_);

  sim::LogicSim logic(netlist);
  for (unsigned bits = 0; bits < 4; ++bits) {
    const bool a = (bits & 1) != 0;
    const bool b = (bits & 2) != 0;
    logic.set_inputs({a, b});
    logic.evaluate();

    std::map<std::string, SourceFunction> drives;
    drives["a"] = SourceFunction::dc(a ? tech_.vdd : 0.0);
    drives["b"] = SourceFunction::dc(b ? tech_.vdd : 0.0);
    const auto elab = elaborate_to_spice(netlist, drives, tech_);
    const auto v = solve_dc(elab.circuit);

    for (const char* name : {"t1", "t2", "y1", "y2"}) {
      const NetId net = *netlist.find_net(name);
      const double electrical = v[static_cast<std::size_t>(elab.node(net))];
      const bool expected = logic.value(net);
      EXPECT_NEAR(electrical, expected ? tech_.vdd : 0.0, 0.05)
          << name << " at inputs " << bits;
    }
  }
}

TEST_F(NetlistBridgeTest, GlitchWidthAgreesAcrossLayers) {
  // Three-inverter chain; strike the first inverter's output with
  // Q = 100 fC. Electrically the glitch is ~500 ps wide; at gate level we
  // inject the calibrated 500 ps pulse. The far end must see comparable
  // pulse widths in both worlds.
  const auto netlist = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
t1 = NOT(a)
t2 = NOT(t1)
y  = NOT(t2)
)",
                                          lib_);

  // --- electrical -------------------------------------------------------
  std::map<std::string, SourceFunction> drives;
  drives["a"] = SourceFunction::dc(tech_.vdd);  // t1 settles low
  auto elab = elaborate_to_spice(netlist, drives, tech_);
  const int struck = elab.node(*netlist.find_net("t1"));
  const int out = elab.node(*netlist.find_net("y"));
  add_node_clamps(elab.circuit, "clamp", struck, elab.vdd, tech_);
  elab.circuit.add_current_source(
      "Istrike", kGround, struck,
      SourceFunction::double_exponential(Femtocoulombs(100.0),
                                         Picoseconds(200.0),
                                         Picoseconds(50.0),
                                         Picoseconds(100.0)));
  TransientOptions options;
  options.t_stop_ps = 2000.0;
  const auto result = run_transient(elab.circuit, options, {struck, out});
  // a=1 ⇒ t1=0, t2=1, y=0; the strike lifts t1, so y pulses high.
  const auto electrical_width =
      result.probe(out).pulse_width_above(tech_.vdd / 2.0);
  ASSERT_TRUE(electrical_width.has_value());

  // --- gate level ---------------------------------------------------------
  sim::EventSim esim(netlist);
  set::Strike strike;
  strike.node = *netlist.find_net("t1");
  strike.start = Picoseconds(100.0);
  strike.width = Picoseconds(500.0);  // calibrated width for 100 fC
  const auto w = esim.net_waveform({true}, {}, strike, *netlist.find_net("y"));
  ASSERT_EQ(w.transitions().size(), 2u);
  const double logical_width = w.transitions()[1] - w.transitions()[0];

  EXPECT_NEAR(*electrical_width, logical_width, 0.2 * logical_width);
}

TEST_F(NetlistBridgeTest, SequentialNetlistRejected) {
  const auto netlist = parse_bench_string(R"(
INPUT(a)
OUTPUT(q)
q = DFF(a)
)",
                                          lib_);
  EXPECT_THROW(elaborate_to_spice(netlist, {}, tech_), Error);
}

TEST_F(NetlistBridgeTest, UnsupportedCellRejected) {
  const auto netlist = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
)",
                                          lib_);
  EXPECT_THROW(elaborate_to_spice(netlist, {}, tech_), Error);
}

TEST_F(NetlistBridgeTest, ConstantsDriveRails) {
  const auto netlist = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
one = VDD
y = AND(a, one)
)",
                                          lib_);
  std::map<std::string, SourceFunction> drives;
  drives["a"] = SourceFunction::dc(tech_.vdd);
  const auto elab = elaborate_to_spice(netlist, drives, tech_);
  const auto v = solve_dc(elab.circuit);
  EXPECT_NEAR(v[static_cast<std::size_t>(elab.node(*netlist.find_net("y")))],
              tech_.vdd, 0.05);
}

}  // namespace
}  // namespace cwsp::spice
