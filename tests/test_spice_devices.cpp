#include "spice/devices.hpp"

#include <gtest/gtest.h>

#include "spice/circuit.hpp"
#include "spice/transient.hpp"

namespace cwsp::spice {
namespace {

using namespace cwsp::literals;

TEST(SourceFunction, Dc) {
  const auto f = SourceFunction::dc(1.5);
  EXPECT_DOUBLE_EQ(f.at(0.0), 1.5);
  EXPECT_DOUBLE_EQ(f.at(1e6), 1.5);
}

TEST(SourceFunction, PulseShape) {
  const auto f = SourceFunction::pulse(0.0, 1.0, /*delay=*/10.0, /*rise=*/4.0,
                                       /*width=*/20.0, /*fall=*/4.0);
  EXPECT_DOUBLE_EQ(f.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.at(10.0), 0.0);
  EXPECT_DOUBLE_EQ(f.at(12.0), 0.5);  // mid-rise
  EXPECT_DOUBLE_EQ(f.at(14.0), 1.0);
  EXPECT_DOUBLE_EQ(f.at(30.0), 1.0);
  EXPECT_DOUBLE_EQ(f.at(36.0), 0.5);  // mid-fall
  EXPECT_DOUBLE_EQ(f.at(100.0), 0.0);
}

TEST(SourceFunction, DoubleExponentialIntegratesToQ) {
  // ∫ I dt = Q exactly for the double-exponential profile (Eq. 1):
  // Q/(τα−τβ)·(τα − τβ) = Q. Numerically integrate in mA·ps = fC.
  const auto f =
      SourceFunction::double_exponential(100.0_fC, 200.0_ps, 50.0_ps, 0.0_ps);
  double total_fc = 0.0;
  const double dt = 0.1;
  for (double t = 0.0; t < 5000.0; t += dt) {
    total_fc += 0.5 * (f.at(t) + f.at(t + dt)) * dt;
  }
  EXPECT_NEAR(total_fc, 100.0, 0.1);
}

TEST(SourceFunction, DoubleExponentialPeak) {
  // Peak at t* = ln(τα/τβ)·τατβ/(τα−τβ) ≈ 92.4 ps for (200, 50).
  const auto f =
      SourceFunction::double_exponential(100.0_fC, 200.0_ps, 50.0_ps, 0.0_ps);
  const double t_star = std::log(4.0) * (200.0 * 50.0) / 150.0;
  const double peak = f.at(t_star);
  EXPECT_GT(peak, f.at(t_star - 20.0));
  EXPECT_GT(peak, f.at(t_star + 20.0));
  EXPECT_NEAR(peak, 0.315, 0.01);  // mA
}

TEST(Diode, ForwardAndReverse) {
  const Diode d("d", 1, 0, DiodeParams{});
  EXPECT_NEAR(d.current(0.0), 0.0, 1e-15);
  EXPECT_LT(d.current(-0.5), 0.0);
  EXPECT_GT(d.current(0.7), 1e-3);  // conducts strongly
  // Monotone increasing.
  EXPECT_LT(d.current(0.5), d.current(0.6));
  // Linear extension keeps conductance finite at high bias.
  EXPECT_DOUBLE_EQ(d.conductance(2.0), d.conductance(0.8));
}

TEST(Mosfet, CutoffBelowThreshold) {
  MosParams p;
  p.kp_ma = 0.2;
  const Mosfet m("m", 1, 2, 0, p);
  const auto op = m.evaluate(/*vd=*/1.0, /*vg=*/0.1, /*vs=*/0.0);
  EXPECT_DOUBLE_EQ(op.ids, 0.0);
  EXPECT_DOUBLE_EQ(op.gm, 0.0);
}

TEST(Mosfet, SaturationCurrentMatchesSquareLaw) {
  MosParams p;
  p.kp_ma = 0.2;
  p.vt = 0.22;
  p.lambda = 0.0;
  const Mosfet m("m", 1, 2, 0, p);
  const auto op = m.evaluate(1.0, 1.0, 0.0);
  const double vov = 1.0 - 0.22;
  EXPECT_NEAR(op.ids, 0.5 * 0.2 * vov * vov, 1e-12);
  EXPECT_NEAR(op.gm, 0.2 * vov, 1e-12);
}

TEST(Mosfet, TriodeRegion) {
  MosParams p;
  p.kp_ma = 0.2;
  p.vt = 0.22;
  p.lambda = 0.0;
  const Mosfet m("m", 1, 2, 0, p);
  const auto op = m.evaluate(0.1, 1.0, 0.0);  // vds < vov
  const double vov = 0.78;
  EXPECT_NEAR(op.ids, 0.2 * (vov * 0.1 - 0.5 * 0.01), 1e-12);
  EXPECT_GT(op.gds, 0.0);
}

TEST(Mosfet, SourceDrainSwapSymmetric) {
  MosParams p;
  p.kp_ma = 0.2;
  p.lambda = 0.0;
  const Mosfet m("m", 1, 2, 3, p);
  const auto fwd = m.evaluate(1.0, 1.0, 0.0);
  const auto rev = m.evaluate(0.0, 1.0, 1.0);  // terminals swapped
  EXPECT_NEAR(fwd.ids, rev.ids, 1e-12);
  EXPECT_EQ(fwd.d_eff, rev.s_eff);
  EXPECT_EQ(fwd.s_eff, rev.d_eff);
}

TEST(Mosfet, PmosConductsWithLowGate) {
  MosParams p;
  p.type = MosType::kPmos;
  p.kp_ma = 0.1;
  p.vt = 0.22;
  p.lambda = 0.0;
  // Source at VDD=1, drain at 0, gate at 0 → |vgs|=1 > vt: on, saturated.
  const Mosfet m("m", /*d=*/1, /*g=*/2, /*s=*/3, p);
  const auto op = m.evaluate(/*vd=*/0.0, /*vg=*/0.0, /*vs=*/1.0);
  const double vov = 1.0 - 0.22;
  EXPECT_NEAR(op.ids, 0.5 * 0.1 * vov * vov, 1e-12);
}

TEST(Mosfet, PmosOffWithHighGate) {
  MosParams p;
  p.type = MosType::kPmos;
  p.kp_ma = 0.1;
  const Mosfet m("m", 1, 2, 3, p);
  const auto op = m.evaluate(0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(op.ids, 0.0);
}

}  // namespace
}  // namespace cwsp::spice
