#include "netlist/bench_parser.hpp"

#include <gtest/gtest.h>

namespace cwsp {
namespace {

class BenchParserTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(BenchParserTest, ParsesMinimalCombinational) {
  const auto n = parse_bench_string(R"(
# tiny circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
)",
                                    lib_);
  EXPECT_EQ(n.primary_inputs().size(), 2u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
  EXPECT_EQ(n.num_gates(), 1u);
  EXPECT_EQ(n.cell_of(GateId{0}).kind(), CellKind::kNand2);
}

TEST_F(BenchParserTest, ParsesAllBasicFunctions) {
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = NOT(a)
n2 = BUFF(b)
n3 = AND(a, b)
n4 = OR(a, c)
n5 = NOR(n1, n2)
n6 = XOR(n3, n4)
n7 = XNOR(n5, c)
n8 = MUX(n6, n7, a)
y  = NAND(n8, b)
)",
                                    lib_);
  EXPECT_EQ(n.num_gates(), 9u);
}

TEST_F(BenchParserTest, OutOfOrderDefinitionsAccepted) {
  const auto n = parse_bench_string(R"(
OUTPUT(y)
y = AND(m, a)
m = NOT(a)
INPUT(a)
)",
                                    lib_);
  EXPECT_EQ(n.num_gates(), 2u);
}

TEST_F(BenchParserTest, DffCreatesFlipFlop) {
  const auto n = parse_bench_string(R"(
INPUT(d_in)
OUTPUT(q)
q = DFF(d_in)
)",
                                    lib_);
  EXPECT_EQ(n.num_flip_flops(), 1u);
  EXPECT_EQ(n.num_gates(), 0u);
}

TEST_F(BenchParserTest, WideGateDecomposed) {
  // A 9-input AND requires a tree of ≤4-input cells.
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
INPUT(g)
INPUT(h)
INPUT(i)
OUTPUT(y)
y = AND(a, b, c, d, e, f, g, h, i)
)",
                                    lib_);
  EXPECT_GE(n.num_gates(), 3u);
  for (GateId g : n.gate_ids()) {
    EXPECT_LE(n.cell_of(g).num_inputs(), 4);
  }
}

TEST_F(BenchParserTest, WideNandKeepsPolarity) {
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
y = NAND(a, b, c, d, e)
)",
                                    lib_);
  n.validate();
  // The gate driving y must be inverting (NANDx or INV).
  const Net& y = n.net(*n.find_net("y"));
  ASSERT_EQ(y.driver_kind, DriverKind::kGate);
  const CellKind kind = n.cell_of(GateId{y.driver_index}).kind();
  const bool inverting = kind == CellKind::kNand2 || kind == CellKind::kNand3 ||
                         kind == CellKind::kNand4 || kind == CellKind::kInv;
  EXPECT_TRUE(inverting);
}

TEST_F(BenchParserTest, ConstantsExtension) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
zero = GND
y = OR(a, zero)
)",
                                    lib_);
  const Net& zero = n.net(*n.find_net("zero"));
  EXPECT_EQ(zero.driver_kind, DriverKind::kConstant);
  EXPECT_FALSE(zero.constant_value);
}

TEST_F(BenchParserTest, UndefinedNetRejected) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = AND(a, phantom)
)",
                                  lib_),
               Error);
}

TEST_F(BenchParserTest, DoubleDefinitionRejected) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(a)
y = BUFF(a)
)",
                                  lib_),
               Error);
}

TEST_F(BenchParserTest, UnknownFunctionRejected) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = FROB(a)
)",
                                  lib_),
               Error);
}

TEST_F(BenchParserTest, MalformedLineRejected) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(y)\ngarbage here\n", lib_),
               Error);
}

TEST_F(BenchParserTest, SequentialCircuitParses) {
  // 2-bit shift register with feedback through an inverter.
  const auto n = parse_bench_string(R"(
INPUT(en)
OUTPUT(q1)
d0 = AND(en, fb)
q0 = DFF(d0)
q1 = DFF(q0)
fb = NOT(q1)
)",
                                    lib_);
  EXPECT_EQ(n.num_flip_flops(), 2u);
  EXPECT_EQ(n.num_gates(), 2u);
}

}  // namespace
}  // namespace cwsp
