#include "baselines/compare.hpp"

#include <gtest/gtest.h>

#include "bencharness/generator.hpp"
#include "netlist/bench_parser.hpp"

namespace cwsp::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  // A benchmark-scale circuit so overhead percentages are meaningful.
  bench::GeneratedBenchmark gen_ =
      bench::generate_benchmark(bench::find_benchmark("alu2"), lib_);
};

TEST_F(BaselinesTest, Anghel00DelayDominatedByTwoDelta) {
  const auto r = harden_anghel00(gen_.netlist, {Picoseconds(450.0)});
  // 2δ = 900 ps in the functional path → large delay overhead.
  EXPECT_GT(r.period_hardened.value() - r.period_regular.value(), 900.0);
  EXPECT_GT(r.delay_overhead_pct(), 20.0);
  // Min-sized elements → small area overhead.
  EXPECT_LT(r.area_overhead_pct(), 10.0);
  EXPECT_DOUBLE_EQ(r.protection_pct, 100.0);
}

TEST_F(BaselinesTest, Anghel00ScalesWithDelta) {
  const auto small = harden_anghel00(gen_.netlist, {Picoseconds(200.0)});
  const auto large = harden_anghel00(gen_.netlist, {Picoseconds(600.0)});
  EXPECT_NEAR(large.period_hardened.value() - small.period_hardened.value(),
              800.0, 1e-9);
}

TEST_F(BaselinesTest, Nicolaidis99FlagsWideGatesInfeasible) {
  // alu2's synthetic netlist has XOR2 frontier joins (2-input) — check
  // feasibility logic on crafted netlists instead.
  const auto two_input = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
)",
                                            lib_);
  EXPECT_TRUE(harden_nicolaidis99(two_input).feasible);

  const auto three_input = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = AND(a, b, c)
)",
                                              lib_);
  EXPECT_FALSE(harden_nicolaidis99(three_input).feasible);
}

TEST_F(BaselinesTest, Nicolaidis99AreaBelowAnghelButDelaySimilar) {
  const auto n99 = harden_nicolaidis99(gen_.netlist);
  EXPECT_GT(n99.delay_overhead_pct(), 20.0);
  EXPECT_GT(n99.area_hardened.value(), n99.area_regular.value());
}

TEST_F(BaselinesTest, GateResizingReachesCoverageTarget) {
  GateResizingOptions options;
  options.samples = 150;
  options.seed = 3;
  const auto r = harden_gate_resizing(gen_.netlist, options);
  EXPECT_GE(r.achieved_coverage_pct, 90.0);
  EXPECT_GT(r.resized_gates, 0);
  EXPECT_GT(r.report.area_overhead_pct(), 0.0);
  // Resizing touches the functional path but only mildly (paper: ~2.8%).
  EXPECT_LT(r.report.delay_overhead_pct(), 10.0);
  EXPECT_LT(r.report.protection_pct, 100.0);
}

TEST_F(BaselinesTest, ResizedDmaxIdentityWhenAllOnes) {
  const std::vector<double> ones(gen_.netlist.num_gates(), 1.0);
  const auto base = resized_dmax(gen_.netlist, ones);
  EXPECT_NEAR(base.value(), gen_.measured_dmax.value(), 1e-6);
}

TEST_F(BaselinesTest, ResizingASingleGateRaisesUpstreamDelay) {
  std::vector<double> mult(gen_.netlist.num_gates(), 1.0);
  // Upsizing every gate doubles every load: strictly slower upstream but
  // faster drive — net effect must keep dmax positive and finite; spot
  // check monotonicity of a pure load increase instead: only the critical
  // endpoint's driver gets larger inputs.
  mult[0] = 8.0;
  const auto changed = resized_dmax(gen_.netlist, mult);
  EXPECT_GT(changed.value(), 0.0);
}

TEST_F(BaselinesTest, SpatialTmrTriplicatesArea) {
  const auto r = harden_spatial_tmr(gen_.netlist);
  EXPECT_GT(r.area_overhead_pct(), 180.0);
  EXPECT_LT(r.delay_overhead_pct(), 5.0);
  EXPECT_DOUBLE_EQ(r.protection_pct, 100.0);
}

TEST_F(BaselinesTest, MultiStrobeDelayCarriesTwoDelta) {
  const auto r = harden_multistrobe(gen_.netlist, {Picoseconds(450.0), 3});
  EXPECT_NEAR(r.period_hardened.value() - r.period_regular.value(),
              2.0 * 450.0 + 35.0, 1e-9);
  // Glitch tolerance capped by Dmin/2.
  EXPECT_LE(r.max_glitch.value(), gen_.measured_dmin.value() / 2.0 + 1e-9);
}

TEST_F(BaselinesTest, MultiStrobeRequiresOddStrobes) {
  EXPECT_THROW(harden_multistrobe(gen_.netlist, {Picoseconds(450.0), 4}),
               Error);
}

TEST_F(BaselinesTest, CompareAllOrdersOurApproachFirst) {
  CompareOptions options;
  options.resizing.samples = 100;
  const auto reports = compare_all(gen_.netlist, options);
  ASSERT_EQ(reports.size(), 6u);
  EXPECT_NE(reports[0].technique.find("This work"), std::string::npos);

  // The paper's headline shape: our delay overhead is far below [15]'s
  // and below [13]'s, at comparable-or-higher area than [13].
  const auto& ours = reports[0];
  const auto& anghel = reports[1];
  EXPECT_LT(ours.delay_overhead_pct(), 1.5);
  EXPECT_GT(anghel.delay_overhead_pct(), 10.0 * ours.delay_overhead_pct());
  EXPECT_DOUBLE_EQ(ours.protection_pct, 100.0);
}

}  // namespace
}  // namespace cwsp::baselines
