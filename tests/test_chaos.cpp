// Chaos harness for the deterministic failpoint subsystem
// (docs/chaos.md): every injected failure — torn journal writes, garbled
// frames, dropped connections, forced cache evictions, solver
// singularities, expired deadlines — must leave the stack in a typed,
// recoverable state, and every recovery must converge on a report
// byte-identical to the clean run.
//
// Each TEST runs in its own process (gtest_discover_tests), so arming
// the process-global failpoint registry cannot leak across tests.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/journal.hpp"
#include "cell/library.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/stopwatch.hpp"
#include "fabric/coordinator.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "spice/subckt.hpp"

namespace cwsp {
namespace {

constexpr char kDesign[] =
    "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
    "t1 = NAND(a, b)\nt2 = XOR(t1, q)\nq = DFF(t2)\n";

std::uint64_t fired_count(const std::string& name) {
  return metrics::Registry::global()
      .counter("failpoint." + name + ".fired")
      .value();
}

// ---- registry semantics ---------------------------------------------

TEST(FailpointRegistry, ParsesSpecsAndReportsThemAsJson) {
  auto& registry = failpoint::Registry::global();
  registry.clear();
  EXPECT_FALSE(failpoint::armed());

  registry.configure(
      "a.site=err:boom;b.site=delay:5@every=2;c.site=torn:3@once;"
      "d.site=garble:7@prob=0.5",
      42);
  EXPECT_TRUE(failpoint::armed());
  EXPECT_EQ(registry.size(), 4u);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("cwsp-failpoints-v1"), std::string::npos);
  EXPECT_NE(json.find("\"a.site\""), std::string::npos);
  EXPECT_NE(json.find("\"d.site\""), std::string::npos);

  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(failpoint::armed());
}

TEST(FailpointRegistry, MalformedSpecsThrowWithoutHalfArming) {
  auto& registry = failpoint::Registry::global();
  registry.clear();
  EXPECT_THROW(registry.configure("no_equals_sign"), ParseError);
  EXPECT_THROW(registry.configure("x=unknown_kind"), ParseError);
  EXPECT_THROW(registry.configure("x=delay:not_a_number"), ParseError);
  EXPECT_THROW(registry.configure("x=torn:-3"), ParseError);
  EXPECT_THROW(registry.configure("x=err@every=zero"), ParseError);
  // A malformed tail must not arm the valid head.
  EXPECT_THROW(registry.configure("good=err;bad"), ParseError);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(failpoint::armed());
}

TEST(FailpointRegistry, PoliciesFireOnceEveryAndDeterministically) {
  auto& registry = failpoint::Registry::global();
  registry.clear();
  registry.configure("one=err@once;third=err@every=3;coin=err@prob=0.5", 7);

  int one_fires = 0;
  int third_fires = 0;
  std::vector<bool> coin_a;
  for (int i = 0; i < 30; ++i) {
    if (registry.fire("one")) ++one_fires;
    if (registry.fire("third")) ++third_fires;
    coin_a.push_back(registry.fire("coin").has_value());
  }
  EXPECT_EQ(one_fires, 1);
  EXPECT_EQ(third_fires, 10);
  // An unarmed name never fires.
  EXPECT_FALSE(registry.fire("unarmed.site").has_value());

  // Identical spec + seed replays the identical prob= sequence.
  registry.clear();
  registry.configure("coin=err@prob=0.5", 7);
  std::vector<bool> coin_b;
  for (int i = 0; i < 30; ++i) {
    coin_b.push_back(registry.fire("coin").has_value());
  }
  EXPECT_EQ(coin_a, coin_b);
  registry.clear();
}

TEST(FailpointRegistry, InjectThrowsAndMutateTearsAndGarbles) {
  auto& registry = failpoint::Registry::global();
  registry.clear();
  registry.configure("boom=err:kapow;tear=torn:3;flip=garble:1");

  EXPECT_THROW(failpoint::inject("boom"), failpoint::InjectedFault);
  try {
    failpoint::inject("boom");
    FAIL() << "inject did not throw";
  } catch (const failpoint::InjectedFault& e) {
    EXPECT_STREQ(e.what(), "kapow");
  }

  std::string torn = "hello\n";
  failpoint::mutate("tear", torn);
  EXPECT_EQ(torn, "hel");
  std::string over = "ab";  // tear past the start clamps to empty
  failpoint::mutate("tear", over);
  EXPECT_EQ(over, "");

  std::string garbled = "abc";
  failpoint::mutate("flip", garbled);
  EXPECT_EQ(garbled, "aBc");

  // Unarmed sites leave payloads untouched and fires() stays false.
  std::string untouched = "data";
  failpoint::mutate("other.site", untouched);
  EXPECT_EQ(untouched, "data");
  EXPECT_FALSE(failpoint::fires("other.site"));

  registry.clear();
  // Fully disarmed, even armed names become no-ops.
  std::string after = "data";
  failpoint::mutate("tear", after);
  EXPECT_EQ(after, "data");
  EXPECT_NO_THROW(failpoint::inject("boom"));
}

// ---- campaign journal sites -----------------------------------------

class CampaignChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::Registry::global().clear();
    session_ = service::DesignSession::build("demo", kDesign, lib_);
    char tmpl[] = "/tmp/cwsp_chaos_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override { failpoint::Registry::global().clear(); }

  service::CampaignSpec spec(std::size_t runs = 12) const {
    service::CampaignSpec s;
    s.runs = runs;
    s.cycles = 8;
    s.seed = 5;
    s.jobs = 2;
    s.json = true;
    return s;
  }

  std::string journal_path() const { return dir_ + "/campaign.journal"; }

  std::string read_file(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  void write_file(const std::string& path, const std::string& bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  CellLibrary lib_ = make_default_library();
  std::shared_ptr<const service::DesignSession> session_;
  std::string dir_;
};

TEST_F(CampaignChaosTest, TornAppendsAreSkippedAndReexecutedOnResume) {
  const std::string clean = service::run_campaign(*session_, spec()).output;

  // Every third strike line loses its tail mid-write.
  failpoint::Registry::global().configure(
      "campaign.journal.append=torn:9@every=3");
  service::CampaignSpec with_journal = spec();
  with_journal.journal_path = journal_path();
  const auto torn = service::run_campaign(*session_, with_journal);
  EXPECT_EQ(torn.output, clean);  // the in-memory report is undamaged
  EXPECT_GE(fired_count("campaign.journal.append"), 4u);
  failpoint::Registry::global().clear();

  // Resume with a healthy registry: damaged lines are re-executed, the
  // report converges on the clean bytes.
  const std::uint64_t resumed_before = metrics::Registry::global()
                                           .counter("campaign.strikes_resumed")
                                           .value();
  service::CampaignSpec resume = spec();
  resume.journal_path = journal_path();
  resume.resume = true;
  const auto recovered = service::run_campaign(*session_, resume);
  EXPECT_EQ(recovered.output, clean);
  const std::uint64_t resumed = metrics::Registry::global()
                                    .counter("campaign.strikes_resumed")
                                    .value() -
                                resumed_before;
  EXPECT_LT(resumed, spec().runs);  // the torn tail was NOT resumed
  EXPECT_GT(resumed, 0u);           // the intact prefix was
}

TEST_F(CampaignChaosTest, TornHeaderMakesTheJournalUnresumable) {
  failpoint::Registry::global().configure(
      "campaign.journal.header=torn:20@once");
  service::CampaignSpec with_journal = spec();
  with_journal.journal_path = journal_path();
  (void)service::run_campaign(*session_, with_journal);
  EXPECT_GE(fired_count("campaign.journal.header"), 1u);
  failpoint::Registry::global().clear();

  // The plan line lost its fingerprint: resume must refuse loudly
  // instead of silently merging foreign results.
  service::CampaignSpec resume = spec();
  resume.journal_path = journal_path();
  resume.resume = true;
  EXPECT_THROW((void)service::run_campaign(*session_, resume), Error);
}

TEST_F(CampaignChaosTest, ResumeSurvivesTruncationAtEveryByteOffset) {
  service::CampaignSpec with_journal = spec(8);
  with_journal.journal_path = journal_path();
  const std::string clean =
      service::run_campaign(*session_, with_journal).output;
  const std::string bytes = read_file(journal_path());
  ASSERT_GT(bytes.size(), 0u);

  // The header (banner + plan line) is written atomically via rename, so
  // the sweep models crashes after that point: every byte offset of the
  // strike-line region.
  const std::size_t banner_end = bytes.find('\n');
  ASSERT_NE(banner_end, std::string::npos);
  const std::size_t header_end = bytes.find('\n', banner_end + 1) + 1;
  ASSERT_GT(header_end, banner_end);

  auto& resumed_counter =
      metrics::Registry::global().counter("campaign.strikes_resumed");
  for (std::size_t cut = header_end; cut <= bytes.size(); ++cut) {
    const std::string prefix = bytes.substr(0, cut);
    write_file(journal_path(), prefix);

    // The torn tail — and only the torn tail — is re-executed: the
    // resumed count must equal the complete strike lines in the prefix.
    std::size_t parseable = 0;
    std::istringstream lines(prefix);
    std::string line;
    while (std::getline(lines, line)) {
      campaign::StrikeResult result;
      if (line.rfind("strike ", 0) == 0 &&
          campaign::parse_strike_line(line, result)) {
        ++parseable;
      }
    }

    const std::uint64_t before = resumed_counter.value();
    service::CampaignSpec resume = spec(8);
    resume.journal_path = journal_path();
    resume.resume = true;
    const auto outcome = service::run_campaign(*session_, resume);
    ASSERT_EQ(outcome.output, clean) << "truncated at byte " << cut;
    ASSERT_EQ(resumed_counter.value() - before, parseable)
        << "truncated at byte " << cut;
  }
}

TEST_F(CampaignChaosTest, LaneKernelInjectionFallsBackToScalarPath) {
  const std::string clean = service::run_campaign(*session_, spec()).output;
  failpoint::Registry::global().configure("sim.lane.run_batch=err:lane down");
  const auto outcome = service::run_campaign(*session_, spec());
  EXPECT_EQ(outcome.output, clean);
  EXPECT_GE(fired_count("sim.lane.run_batch"), 1u);
}

TEST(SolverChaos, InjectedSingularityEscalatesTheRecoveryLadder) {
  failpoint::Registry::global().clear();
  spice::SolverDiagnostics clean_diagnostics;
  const auto clean = spice::strike_waveform(Femtocoulombs(100.0), {}, 1500.0,
                                            &clean_diagnostics);

  failpoint::Registry::global().configure("spice.solver.linear=err@once");
  spice::SolverDiagnostics diagnostics;
  spice::Waveform wave;
  EXPECT_NO_THROW(wave = spice::strike_waveform(Femtocoulombs(100.0), {},
                                                1500.0, &diagnostics));
  EXPECT_GE(fired_count("spice.solver.linear"), 1u);
  // The ladder absorbed the singular step; the waveform is still sane.
  EXPECT_GT(wave.peak(), 0.0);
  EXPECT_NEAR(wave.peak(), clean.peak(), 0.2);
  failpoint::Registry::global().clear();
}

// ---- fabric sites ----------------------------------------------------

class FabricChaosTest : public CampaignChaosTest {
 protected:
  service::CampaignSpec fabric_spec() const {
    service::CampaignSpec s = spec(24);
    s.adversarial = true;
    return s;
  }

  fabric::FabricOptions base_options() const {
    fabric::FabricOptions options;
    // Pin the shard cut: the default derives it from the worker count,
    // so a worker-less resume would cut the plan differently than the
    // two-worker chaos run and refuse every journaled marker.
    options.shards = 6;
    options.dial.attempts = 2;
    options.dial.backoff_base_ms = 5.0;
    options.dial.backoff_cap_ms = 20.0;
    options.dial.connect_timeout_ms = 500.0;
    options.heartbeat_interval_ms = 100.0;
    options.heartbeat_timeout_ms = 800.0;
    options.worker_failure_limit = 3;
    return options;
  }
};

/// An honest in-process worker daemon on an ephemeral TCP port.
class RealWorker {
 public:
  explicit RealWorker(const CellLibrary& lib) {
    char tmpl[] = "/tmp/cwsp_chaosw_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    service::ServerOptions options;
    options.socket_path = std::string(tmpl) + "/s";
    options.workers = 2;
    options.tcp_endpoint = "127.0.0.1:0";
    server_ = std::make_unique<service::Server>(std::move(options), lib);
    thread_ = std::thread([this] { server_->run(); });
    for (int i = 0; i < 400 && server_->tcp_port() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (server_->tcp_port() == 0) throw Error("worker TCP port never bound");
  }

  ~RealWorker() {
    server_->request_shutdown();
    thread_.join();
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server_->tcp_port());
  }

 private:
  std::unique_ptr<service::Server> server_;
  std::thread thread_;
};

TEST_F(FabricChaosTest, FullChaosScheduleStillYieldsByteIdenticalReport) {
  const std::string clean =
      service::run_campaign(*session_, fabric_spec()).output;

  // The acceptance schedule: a torn coordinator journal, a failed
  // dispatch, a garbled response frame, a missed heartbeat and delayed
  // commits — all in one distributed run against two real workers.
  failpoint::Registry::global().configure(
      "campaign.journal.shard_marker=torn:9@once;"
      "fabric.dispatch.send=err:dispatch chaos@once;"
      "fabric.dispatch.response=garble:3@once;"
      "fabric.heartbeat=err:heartbeat chaos@once;"
      "fabric.commit=delay:1@every=2",
      11);

  RealWorker w1(lib_);
  RealWorker w2(lib_);
  fabric::FabricOptions options = base_options();
  options.workers = {w1.endpoint(), w2.endpoint()};
  options.journal_path = journal_path();
  const fabric::FabricOutcome outcome = fabric::run_distributed_campaign(
      *session_, kDesign, fabric_spec(), options);

  EXPECT_EQ(outcome.outcome.output, clean);
  EXPECT_GE(fired_count("campaign.journal.shard_marker"), 1u);
  EXPECT_GE(fired_count("fabric.dispatch.send"), 1u);
  EXPECT_GE(fired_count("fabric.dispatch.response"), 1u);
  EXPECT_GE(fired_count("fabric.heartbeat"), 1u);
  EXPECT_GE(fired_count("fabric.commit"), 1u);

  // The journal carries a torn shard marker: a healthy restart must
  // re-execute exactly that shard and still converge on the clean bytes.
  failpoint::Registry::global().clear();
  fabric::FabricOptions resume = base_options();
  resume.journal_path = journal_path();
  resume.resume = true;
  const fabric::FabricOutcome recovered = fabric::run_distributed_campaign(
      *session_, kDesign, fabric_spec(), resume);
  EXPECT_EQ(recovered.outcome.output, clean);
  EXPECT_GE(recovered.stats.shards_resumed, 1u);
  EXPECT_LT(recovered.stats.shards_resumed, recovered.stats.shards_total);
}

TEST_F(FabricChaosTest, FabricJournalSurvivesTruncationAtEveryByteOffset) {
  const service::CampaignSpec small = spec(6);
  const std::string clean = service::run_campaign(*session_, small).output;

  fabric::FabricOptions seed_options = base_options();
  seed_options.journal_path = journal_path();
  ASSERT_EQ(fabric::run_distributed_campaign(*session_, kDesign, small,
                                             seed_options)
                .outcome.output,
            clean);
  const std::string bytes = read_file(journal_path());
  const std::size_t banner_end = bytes.find('\n');
  ASSERT_NE(banner_end, std::string::npos);
  const std::size_t header_end = bytes.find('\n', banner_end + 1) + 1;

  for (std::size_t cut = header_end; cut <= bytes.size(); ++cut) {
    write_file(journal_path(), bytes.substr(0, cut));
    fabric::FabricOptions resume = base_options();
    resume.journal_path = journal_path();
    resume.resume = true;
    const fabric::FabricOutcome outcome = fabric::run_distributed_campaign(
        *session_, kDesign, small, resume);
    ASSERT_EQ(outcome.outcome.output, clean) << "truncated at byte " << cut;
  }
}

TEST_F(FabricChaosTest, ExpiredCampaignDeadlineInterruptsTheFabric) {
  // A generous budget changes nothing.
  fabric::FabricOptions relaxed = base_options();
  relaxed.deadline_ms = 120'000.0;
  EXPECT_EQ(fabric::run_distributed_campaign(*session_, kDesign,
                                             fabric_spec(), relaxed)
                .outcome.output,
            service::run_campaign(*session_, fabric_spec()).output);

  // A ~zero budget interrupts between strikes instead of hanging.
  fabric::FabricOptions strict = base_options();
  strict.deadline_ms = 0.0001;
  const fabric::FabricOutcome outcome = fabric::run_distributed_campaign(
      *session_, kDesign, fabric_spec(), strict);
  EXPECT_EQ(outcome.outcome.status, campaign::CampaignStatus::kInterrupted);
}

// ---- service sites ---------------------------------------------------

class ServiceChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Registry::global().clear(); }

  void TearDown() override {
    failpoint::Registry::global().clear();
    if (server_ != nullptr) {
      server_->request_shutdown();
      thread_.join();
    }
  }

  void start(const std::function<void(service::ServerOptions&)>& tweak = {}) {
    char tmpl[] = "/tmp/cwsp_chaoss_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    service::ServerOptions options;
    options.socket_path = dir_ + "/s";
    options.workers = 2;
    options.queue_capacity = 16;
    if (tweak) tweak(options);
    server_ = std::make_unique<service::Server>(std::move(options), lib_);
    thread_ = std::thread([this] { server_->run(); });
    for (int i = 0; i < 200; ++i) {
      try {
        service::Client probe(server_->socket_path());
        return;
      } catch (const Error&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    FAIL() << "server never came up";
  }

  service::json::Value call(service::Client& client,
                            const std::string& line) {
    client.send_line(line);
    std::string response;
    EXPECT_TRUE(client.read_line(response));
    return service::json::parse(response);
  }

  service::json::Value call(const std::string& line) {
    service::Client client(server_->socket_path());
    return call(client, line);
  }

  std::string design_field() const {
    return "\"design\":\"" + service::json::escape(kDesign) +
           "\",\"design_name\":\"demo\"";
  }

  CellLibrary lib_ = make_default_library();
  std::string dir_;
  std::unique_ptr<service::Server> server_;
  std::thread thread_;
};

TEST_F(ServiceChaosTest, FailpointsOpConfiguresInspectsAndClears) {
  start();
  service::Client client(server_->socket_path());

  auto armed = call(client,
                    R"({"id":"f1","op":"failpoints",)"
                    R"("spec":"service.enqueue=err@once","seed":3})");
  EXPECT_TRUE(armed.boolean("ok", false));
  EXPECT_NE(armed.text("payload", "").find("service.enqueue"),
            std::string::npos);

  // The armed point answers the next work op with a typed error...
  auto injected =
      call(client, R"({"id":"w1","op":"sta",)" + design_field() + "}");
  EXPECT_FALSE(injected.boolean("ok", false));
  EXPECT_EQ(injected.text("code", ""), "injected_fault");
  EXPECT_GE(fired_count("service.enqueue"), 1u);

  // ...and @once means the retry goes through untouched.
  auto retried =
      call(client, R"({"id":"w2","op":"sta",)" + design_field() + "}");
  EXPECT_TRUE(retried.boolean("ok", false));

  auto cleared =
      call(client, R"({"id":"f2","op":"failpoints","clear":true})");
  EXPECT_TRUE(cleared.boolean("ok", false));
  EXPECT_NE(cleared.text("payload", "").find("\"armed\":0"),
            std::string::npos);
  EXPECT_FALSE(failpoint::armed());
}

TEST_F(ServiceChaosTest, GarbledRequestFrameIsATypedBadRequest) {
  start();
  service::Client client(server_->socket_path());
  ASSERT_TRUE(call(client,
                   R"({"id":"f","op":"failpoints",)"
                   R"("spec":"service.read_line=garble:0@once"})")
                  .boolean("ok", false));

  // The garbled byte turns '{' into '[' — admission answers bad_request
  // instead of crashing the reader or corrupting the queue.
  auto garbled = call(client, R"({"id":"g","op":"ping"})");
  EXPECT_FALSE(garbled.boolean("ok", false));
  EXPECT_EQ(garbled.text("code", ""), "bad_request");
  EXPECT_GE(fired_count("service.read_line"), 1u);

  // The connection survives.
  EXPECT_TRUE(
      call(client, R"({"id":"p","op":"ping"})").boolean("ok", false));
}

TEST_F(ServiceChaosTest, ForcedSessionEvictionRebuildsTransparently) {
  start();
  service::Client client(server_->socket_path());
  // Warm the session cache, then force a full eviction under the next
  // lookup: the design is rebuilt, the response is unaffected. The
  // second request names a different design so it reaches the session
  // cache instead of the memoized result cache.
  ASSERT_TRUE(call(client, R"({"id":"w0","op":"sta",)" + design_field() + "}")
                  .boolean("ok", false));
  const std::uint64_t evicted_before = metrics::Registry::global()
                                           .counter("service.sessions.evictions")
                                           .value();
  ASSERT_TRUE(call(client,
                   R"({"id":"f","op":"failpoints",)"
                   R"("spec":"service.session.evict=err@once"})")
                  .boolean("ok", false));
  const std::string other =
      "\"design\":\"" +
      service::json::escape(
          "INPUT(a)\nOUTPUT(y)\nt = NOT(a)\ny = DFF(t)\n") +
      "\",\"design_name\":\"other\"";
  auto rebuilt = call(client, R"({"id":"w1","op":"sta",)" + other + "}");
  EXPECT_TRUE(rebuilt.boolean("ok", false));
  EXPECT_GE(fired_count("service.session.evict"), 1u);
  EXPECT_GT(metrics::Registry::global()
                .counter("service.sessions.evictions")
                .value(),
            evicted_before);
}

TEST_F(ServiceChaosTest, DroppedAcceptIsRetriedByTheDialingClient) {
  start([](service::ServerOptions& options) {
    options.tcp_endpoint = "127.0.0.1:0";
  });
  // Drain the accept backlog (start()'s probe connection) before arming,
  // so the failpoint hits the TCP dial below and not a stale accept.
  EXPECT_TRUE(call(R"({"id":"p0","op":"ping"})").boolean("ok", false));
  failpoint::Registry::global().configure("service.accept=err@once");

  // First TCP connection is accepted and immediately dropped — the
  // client sees EOF, not a hang.
  {
    service::Client dropped("127.0.0.1", server_->tcp_port());
    dropped.send_line(R"({"id":"p","op":"ping"})");
    std::string line;
    EXPECT_FALSE(dropped.read_line(line));
  }
  EXPECT_GE(fired_count("service.accept"), 1u);

  // The next dial lands on a healthy accept.
  service::Client retry("127.0.0.1", server_->tcp_port());
  EXPECT_TRUE(
      call(retry, R"({"id":"p2","op":"ping"})").boolean("ok", false));
}

TEST_F(ServiceChaosTest, TcpRequestsRequireTheSharedSecret) {
  start([](service::ServerOptions& options) {
    options.tcp_endpoint = "127.0.0.1:0";
    options.auth_token = "sekrit";
  });

  service::Client tcp("127.0.0.1", server_->tcp_port());
  // Liveness probes stay open (the fabric pings before authenticating)...
  EXPECT_TRUE(
      call(tcp, R"({"id":"p","op":"ping"})").boolean("ok", false));
  // ...but work ops without the token get a typed refusal,
  auto denied = call(tcp, R"({"id":"w","op":"sta",)" + design_field() + "}");
  EXPECT_FALSE(denied.boolean("ok", false));
  EXPECT_EQ(denied.text("code", ""), "unauthorized");
  // wrong tokens too,
  auto wrong = call(tcp, R"({"id":"w2","op":"sta","auth":"sekrit-not",)" +
                             design_field() + "}");
  EXPECT_EQ(wrong.text("code", ""), "unauthorized");
  // and the right token is admitted.
  auto granted = call(tcp, R"({"id":"w3","op":"sta","auth":"sekrit",)" +
                               design_field() + "}");
  EXPECT_TRUE(granted.boolean("ok", false));
  EXPECT_GE(metrics::Registry::global()
                .counter("service.requests.unauthorized")
                .value(),
            2u);

  // Unix-socket clients are local and exempt.
  EXPECT_TRUE(call(R"({"id":"u","op":"sta",)" + design_field() + "}")
                  .boolean("ok", false));
}

TEST_F(ServiceChaosTest, ExceededDeadlineIsATypedError) {
  start();
  // A microscopic budget: the job is admitted (no load history yet),
  // the campaign is interrupted by the armed token, and the response is
  // the typed deadline error — never a silent partial report.
  auto response = call(R"({"id":"d","op":"campaign","runs":200,)"
                       R"("deadline_ms":0.001,)" +
                       design_field() + "}");
  EXPECT_FALSE(response.boolean("ok", false));
  EXPECT_EQ(response.text("code", ""), "deadline_exceeded");
  EXPECT_GE(metrics::Registry::global()
                .counter("service.deadline.admitted")
                .value(),
            1u);
  EXPECT_GE(metrics::Registry::global()
                .counter("service.deadline.exceeded")
                .value(),
            1u);
}

TEST_F(ServiceChaosTest, HopelessDeadlinesAreShedAtAdmission) {
  start();
  // Teach the queue-wait histogram that p99 is ~60 s; a 10 ms deadline
  // is then hopeless and must be shed before consuming a worker.
  auto& wait_hist =
      metrics::Registry::global().histogram("service.queue_wait_us");
  for (int i = 0; i < 16; ++i) wait_hist.observe_us(60'000'000);

  auto shed = call(R"({"id":"s","op":"sta","deadline_ms":10,)" +
                   design_field() + "}");
  EXPECT_FALSE(shed.boolean("ok", false));
  EXPECT_EQ(shed.text("code", ""), "overloaded");
  EXPECT_GE(
      metrics::Registry::global().counter("service.deadline.shed").value(),
      1u);

  // Without a deadline the same request is served normally.
  EXPECT_TRUE(call(R"({"id":"n","op":"sta",)" + design_field() + "}")
                  .boolean("ok", false));
}

TEST_F(ServiceChaosTest, ShutdownDrainCancelsStragglersPastTheGrace) {
  start([](service::ServerOptions& options) {
    options.workers = 1;
    options.drain_grace_ms = 100.0;
  });
  // Park a long-running job in flight, then pull SIGTERM's lever: the
  // server must exit in bounded time with the straggler cancelled.
  service::Client client(server_->socket_path());
  client.send_line(R"({"id":"long","op":"sleep","ms":30000})");
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto begin = std::chrono::steady_clock::now();
  server_->request_shutdown();
  thread_.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - begin)
          .count();
  server_.reset();
  EXPECT_LT(elapsed_ms, 30'000.0);
  EXPECT_GE(
      metrics::Registry::global().counter("service.drain.cancelled").value(),
      1u);
}

}  // namespace
}  // namespace cwsp
