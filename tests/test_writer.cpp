#include "netlist/writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_parser.hpp"
#include "netlist/decompose.hpp"

namespace cwsp {
namespace {

class WriterTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(WriterTest, BenchRoundTripPreservesStructure) {
  const std::string src = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(q)
t1 = NAND(a, b)
t2 = XOR(t1, c)
y  = MUX(t1, t2, a)
q  = DFF(t2)
)";
  const auto original = parse_bench_string(src, lib_, "roundtrip");
  const auto reparsed =
      parse_bench_string(to_bench_string(original), lib_, "roundtrip2");

  EXPECT_EQ(reparsed.primary_inputs().size(),
            original.primary_inputs().size());
  EXPECT_EQ(reparsed.primary_outputs().size(),
            original.primary_outputs().size());
  EXPECT_EQ(reparsed.num_gates(), original.num_gates());
  EXPECT_EQ(reparsed.num_flip_flops(), original.num_flip_flops());
}

TEST_F(WriterTest, AoiExpandedOnWrite) {
  Netlist n(lib_, "aoi");
  const NetId a = n.add_primary_input("a");
  const NetId b = n.add_primary_input("b");
  const NetId c = n.add_primary_input("c");
  n.add_gate(lib_.cell_for(CellKind::kAoi21), {a, b, c}, "y");
  n.mark_primary_output(*n.find_net("y"));
  n.validate();

  const auto reparsed = parse_bench_string(to_bench_string(n), lib_, "r");
  reparsed.validate();
  // AOI21 expands to AND + OR + NOT.
  EXPECT_EQ(reparsed.num_gates(), 3u);
}

TEST_F(WriterTest, ConstantsRoundTrip) {
  Netlist n(lib_, "consts");
  const NetId a = n.add_primary_input("a");
  const NetId one = n.add_constant(true, "tie1");
  n.add_gate(lib_.cell_for(CellKind::kAnd2), {a, one}, "y");
  n.mark_primary_output(*n.find_net("y"));
  n.validate();

  const auto reparsed = parse_bench_string(to_bench_string(n), lib_, "r");
  EXPECT_TRUE(reparsed.net(*reparsed.find_net("tie1")).constant_value);
}

TEST_F(WriterTest, DotOutputMentionsEveryGate) {
  Netlist n(lib_, "dot");
  const NetId a = n.add_primary_input("a");
  const GateId g = n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "y");
  const FlipFlopId ff = n.add_flip_flop(n.gate(g).output, "q");
  n.mark_primary_output(n.flip_flop(ff).q);

  std::ostringstream os;
  write_dot(n, os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("INV"), std::string::npos);
  EXPECT_NE(dot.find("DFF"), std::string::npos);
}

}  // namespace
}  // namespace cwsp
