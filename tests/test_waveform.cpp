#include "spice/waveform.hpp"

#include <gtest/gtest.h>

namespace cwsp::spice {
namespace {

Waveform triangle() {
  // 0 at t=0, 1 at t=10, 0 at t=20.
  Waveform w;
  w.append(0.0, 0.0);
  w.append(10.0, 1.0);
  w.append(20.0, 0.0);
  return w;
}

TEST(Waveform, ValueAtInterpolates) {
  const auto w = triangle();
  EXPECT_DOUBLE_EQ(w.value_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(w.value_at(15.0), 0.5);
  EXPECT_DOUBLE_EQ(w.value_at(-1.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(w.value_at(25.0), 0.0);  // clamped
}

TEST(Waveform, PeakAndTrough) {
  const auto w = triangle();
  EXPECT_DOUBLE_EQ(w.peak(), 1.0);
  EXPECT_DOUBLE_EQ(w.trough(), 0.0);
}

TEST(Waveform, FirstCrossing) {
  const auto w = triangle();
  const auto rise = w.first_crossing(0.5, true);
  ASSERT_TRUE(rise.has_value());
  EXPECT_DOUBLE_EQ(*rise, 5.0);
  const auto fall = w.first_crossing(0.5, false);
  ASSERT_TRUE(fall.has_value());
  EXPECT_DOUBLE_EQ(*fall, 15.0);
  EXPECT_FALSE(w.first_crossing(2.0, true).has_value());
}

TEST(Waveform, FirstCrossingAfter) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(10.0, 1.0);
  w.append(20.0, 0.0);
  w.append(30.0, 1.0);
  const auto second = w.first_crossing(0.5, true, 12.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(*second, 25.0);
}

TEST(Waveform, PulseWidthAbove) {
  const auto w = triangle();
  const auto width = w.pulse_width_above(0.5);
  ASSERT_TRUE(width.has_value());
  EXPECT_DOUBLE_EQ(*width, 10.0);
}

TEST(Waveform, PulseWidthBelow) {
  // Inverted triangle: 1 → 0 → 1.
  Waveform w;
  w.append(0.0, 1.0);
  w.append(10.0, 0.0);
  w.append(20.0, 1.0);
  const auto width = w.pulse_width_below(0.5);
  ASSERT_TRUE(width.has_value());
  EXPECT_DOUBLE_EQ(*width, 10.0);
}

TEST(Waveform, PulseNeverEndingUsesLastSample) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(10.0, 1.0);  // never comes back down
  const auto width = w.pulse_width_above(0.5);
  ASSERT_TRUE(width.has_value());
  EXPECT_DOUBLE_EQ(*width, 5.0);  // crossing at t=5, last sample t=10
}

TEST(Waveform, TimeAboveAccumulatesMultiplePulses) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(10.0, 1.0);
  w.append(20.0, 0.0);
  w.append(30.0, 1.0);
  w.append(40.0, 0.0);
  EXPECT_DOUBLE_EQ(w.time_above(0.5), 20.0);
}

TEST(Waveform, RejectsOutOfOrderSamples) {
  Waveform w;
  w.append(10.0, 0.0);
  EXPECT_THROW(w.append(5.0, 1.0), Error);
}

TEST(Waveform, EmptyMeasurementsThrow) {
  const Waveform w;
  EXPECT_THROW((void)(w.peak()), Error);
  EXPECT_THROW((void)(w.value_at(1.0)), Error);
}

}  // namespace
}  // namespace cwsp::spice
