// End-to-end tests of the analysis server over a real Unix socket:
// protocol envelope, CLI/service byte-identity, backpressure, request
// coalescing + result caching, cancellation, and the shutdown metrics
// dump (docs/service.md).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "cell/library.hpp"
#include "common/metrics.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/session.hpp"

namespace cwsp::service {
namespace {

constexpr char kDesign[] =
    "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
    "t1 = NAND(a, b)\nt2 = XOR(t1, q)\nq = DFF(t2)\n";

std::string json_design_field() {
  return "\"design\":\"" + json::escape(kDesign) +
         "\",\"design_name\":\"demo\"";
}

/// Runs a server on a fresh socket in a temp dir for the test's lifetime.
class ServiceTest : public ::testing::Test {
 protected:
  void start(std::size_t workers, std::size_t queue_capacity,
             const std::function<void(ServerOptions&)>& tweak = {}) {
    char tmpl[] = "/tmp/cwsp_svc_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    ServerOptions options;
    options.socket_path = dir_ + "/s";
    options.workers = workers;
    options.queue_capacity = queue_capacity;
    options.metrics_json_path = dir_ + "/metrics.json";
    if (tweak) tweak(options);
    server_ = std::make_unique<Server>(std::move(options), lib_);
    thread_ = std::thread([this] { server_->run(); });
    // The listener binds asynchronously; wait until it accepts.
    for (int i = 0; i < 200; ++i) {
      try {
        Client probe(server_->socket_path());
        return;
      } catch (const Error&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    FAIL() << "server never came up";
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->request_shutdown();
      thread_.join();
    }
  }

  /// One-request round trip on a fresh connection.
  json::Value call(const std::string& line) {
    Client client(server_->socket_path());
    client.send_line(line);
    std::string response;
    EXPECT_TRUE(client.read_line(response));
    return json::parse(response);
  }

  CellLibrary lib_ = make_default_library();
  std::string dir_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServiceTest, PingEchoesIdAndPong) {
  start(1, 8);
  const auto response = call(R"({"id":"p1","op":"ping"})");
  EXPECT_EQ(response.text("id", ""), "p1");
  EXPECT_TRUE(response.boolean("ok", false));
  EXPECT_EQ(response.text("payload", ""), "pong");
}

TEST_F(ServiceTest, MalformedAndUnknownRequestsAreBadRequests) {
  start(1, 8);
  EXPECT_EQ(call("{not json").text("code", ""), "bad_request");
  EXPECT_EQ(call(R"({"id":"x","op":"frobnicate"})").text("code", ""),
            "bad_request");
  EXPECT_EQ(call(R"({"id":"x","op":"campaign"})").text("code", ""),
            "bad_request");  // no design
  // One-shot-only fields are rejected, not silently ignored.
  EXPECT_EQ(call(R"({"op":"campaign",)" + json_design_field() +
                 R"(,"journal":"/tmp/j"})")
                .text("code", ""),
            "bad_request");
}

TEST_F(ServiceTest, CampaignPayloadIsByteIdenticalToDirectExecution) {
  start(2, 8);
  const auto response =
      call(R"({"id":"c","op":"campaign","runs":6,"seed":3,)" +
           json_design_field() + "}");
  ASSERT_TRUE(response.boolean("ok", false)) << response.text("error", "");

  const auto session = DesignSession::build("demo", kDesign, lib_);
  CampaignSpec spec;
  spec.runs = 6;
  spec.seed = 3;
  const CampaignOutcome direct = run_campaign(*session, spec);
  EXPECT_EQ(response.text("payload", ""), direct.output);
  EXPECT_EQ(response.text("status", ""),
            campaign::to_string(direct.status));
}

TEST_F(ServiceTest, StaLintCoverageMatchDirectExecution) {
  start(2, 8);
  const auto session = DesignSession::build("demo", kDesign, lib_);

  const auto sta = call(R"({"op":"sta",)" + json_design_field() + "}");
  EXPECT_EQ(sta.text("payload", ""), run_sta_report(*session));

  LintSpec lint_spec;
  lint_spec.text = kDesign;
  lint_spec.name = "demo";
  const auto lint = call(R"({"op":"lint",)" + json_design_field() + "}");
  EXPECT_EQ(lint.text("payload", ""), run_lint(lint_spec, lib_).output);

  CoverageSpec coverage_spec;
  coverage_spec.runs = 5;
  const auto coverage = call(R"({"op":"coverage","runs":5,)" +
                             json_design_field() + "}");
  EXPECT_EQ(coverage.text("payload", ""),
            run_coverage(*session, coverage_spec).output);
}

TEST_F(ServiceTest, RepeatRequestsHitTheResultCache) {
  start(1, 8);
  const std::string request =
      R"({"op":"campaign","runs":4,)" + json_design_field() + "}";
  const auto first = call(request);
  const std::uint64_t hits_before =
      metrics::Registry::global().counter("service.result_cache.hits").value();
  const auto second = call(request);
  EXPECT_EQ(first.text("payload", ""), second.text("payload", ""));
  EXPECT_GT(
      metrics::Registry::global().counter("service.result_cache.hits").value(),
      hits_before);
}

TEST_F(ServiceTest, FullQueueAnswersQueueFullAndQueuedJobsCancel) {
  start(1, 1);  // one worker, one queue slot
  Client client(server_->socket_path());
  // j1 occupies the worker; j2 takes the single queue slot.
  client.send_line(R"({"id":"j1","op":"sleep","ms":400})");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.send_line(R"({"id":"j2","op":"sleep","ms":400})");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // j3 finds the queue full -> immediate backpressure answer.
  client.send_line(R"({"id":"j3","op":"sleep","ms":1})");
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  auto response = json::parse(line);
  EXPECT_EQ(response.text("id", ""), "j3");
  EXPECT_EQ(response.text("code", ""), "queue_full");

  // Cancel queued j2: its own response reports `cancelled`, and the
  // canceller is acknowledged.
  client.send_line(R"({"id":"k1","op":"cancel","target":"j2"})");
  // Cancel in-flight j1: the worker aborts the sleep cooperatively.
  client.send_line(R"({"id":"k2","op":"cancel","target":"j1"})");
  // Cancelling something unknown is an error, not a hang.
  client.send_line(R"({"id":"k3","op":"cancel","target":"nope"})");

  std::map<std::string, json::Value> responses;
  while (responses.size() < 5 && client.read_line(line)) {
    auto r = json::parse(line);
    responses.emplace(r.text("id", ""), std::move(r));
  }
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses.at("j2").text("code", ""), "cancelled");
  EXPECT_EQ(responses.at("j1").text("code", ""), "cancelled");
  EXPECT_TRUE(responses.at("k1").boolean("ok", false));
  EXPECT_TRUE(responses.at("k2").boolean("ok", false));
  EXPECT_EQ(responses.at("k3").text("code", ""), "not_found");
}

TEST_F(ServiceTest, InvalidNumericFieldsAreBadRequests) {
  start(1, 8);
  // Negative / fractional / huge numerics must be rejected at admission,
  // not cast to unsigned (UB) or allowed to exhaust the daemon.
  for (const char* field : {"\"runs\":-1", "\"runs\":1e18", "\"seed\":1.5",
                            "\"jobs\":4096", "\"cycles\":-3",
                            "\"width\":1e300", "\"timeout_ms\":-5"}) {
    const auto response = call(R"({"id":"n","op":"campaign",)" +
                               std::string(field) + "," +
                               json_design_field() + "}");
    EXPECT_EQ(response.text("code", ""), "bad_request") << field;
  }
  EXPECT_EQ(call(R"({"id":"n","op":"coverage","runs":-1,)" +
                 json_design_field() + "}")
                .text("code", ""),
            "bad_request");
  // In-range values still work.
  EXPECT_TRUE(call(R"({"op":"campaign","runs":3,"seed":2,)" +
                   json_design_field() + "}")
                  .boolean("ok", false));
}

TEST_F(ServiceTest, TimedCampaignsBypassBatchingAndResultCache) {
  start(1, 8);
  // timeout_ms makes the report wall-clock dependent ("interrupted"
  // status), so such requests must never be coalesced or memoized.
  const std::string request =
      R"({"op":"campaign","runs":4,"timeout_ms":60000,)" +
      json_design_field() + "}";
  auto& registry = metrics::Registry::global();
  const std::uint64_t hits_before =
      registry.counter("service.result_cache.hits").value();
  const std::uint64_t misses_before =
      registry.counter("service.result_cache.misses").value();
  const auto first = call(request);
  const auto second = call(request);
  ASSERT_TRUE(first.boolean("ok", false)) << first.text("error", "");
  // Both executions ran the engine; neither consulted the cache.
  EXPECT_EQ(registry.counter("service.result_cache.hits").value(),
            hits_before);
  EXPECT_EQ(registry.counter("service.result_cache.misses").value(),
            misses_before);
  // A generous timeout never fires, so the reports still agree.
  EXPECT_EQ(first.text("payload", ""), second.text("payload", ""));
}

TEST_F(ServiceTest, BatchMemberCancelDoesNotAffectOtherConnections) {
  start(1, 8);  // one worker so both campaigns queue and coalesce
  Client a(server_->socket_path());
  Client b(server_->socket_path());

  // Occupy the worker, then queue two identical long campaigns from two
  // connections — they coalesce into one batch when the worker frees up.
  a.send_line(R"({"id":"s","op":"sleep","ms":150})");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const std::string campaign =
      R"({"op":"campaign","runs":100000,)" + json_design_field() + "}";
  a.send_line(R"({"id":"a1",)" + campaign.substr(1));
  b.send_line(R"({"id":"b1",)" + campaign.substr(1));

  // The sleep response marks the worker picking up the campaign batch.
  std::string line;
  ASSERT_TRUE(a.read_line(line));
  ASSERT_EQ(json::parse(line).text("id", ""), "s");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // A cancels its member mid-flight: only a1 is answered `cancelled`;
  // the shared execution continues and b1 still gets the real report.
  a.send_line(R"({"id":"k","op":"cancel","target":"a1"})");
  std::map<std::string, json::Value> from_a;
  while (from_a.size() < 2 && a.read_line(line)) {
    auto r = json::parse(line);
    from_a.emplace(r.text("id", ""), std::move(r));
  }
  ASSERT_EQ(from_a.size(), 2u);
  EXPECT_TRUE(from_a.at("k").boolean("ok", false));
  EXPECT_EQ(from_a.at("a1").text("code", ""), "cancelled");

  ASSERT_TRUE(b.read_line(line));
  const auto b1 = json::parse(line);
  EXPECT_EQ(b1.text("id", ""), "b1");
  EXPECT_TRUE(b1.boolean("ok", false)) << b1.text("error", "");
  EXPECT_FALSE(b1.text("payload", "").empty());
  // The shared execution ran to completion despite A's cancel.
  EXPECT_NE(b1.text("status", ""), "interrupted");
}

TEST_F(ServiceTest, MetricsRequestAndShutdownDumpShareTheDocument) {
  start(1, 8);
  (void)call(R"({"op":"ping"})");
  const auto metrics = call(R"({"op":"metrics"})");
  ASSERT_TRUE(metrics.boolean("ok", false));
  const json::Value document = json::parse(metrics.text("payload", "{}"));
  EXPECT_EQ(document.text("schema", ""), "cwsp-metrics-v1");

  const std::string dump_path = dir_ + "/metrics.json";
  server_->request_shutdown();
  thread_.join();
  server_.reset();

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value dumped = json::parse(buffer.str());
  EXPECT_EQ(dumped.text("schema", ""), "cwsp-metrics-v1");
}

TEST_F(ServiceTest, ShutdownRequestStopsTheServer) {
  start(2, 8);
  const auto response = call(R"({"id":"s","op":"shutdown"})");
  EXPECT_TRUE(response.boolean("ok", false));
  thread_.join();
  server_.reset();
  EXPECT_THROW(Client{dir_ + "/s"}, Error);
}

TEST_F(ServiceTest, OversizedFrameIsRejectedAndConnectionClosed) {
  start(1, 8, [](ServerOptions& options) {
    options.max_frame_bytes = 1024;
  });
  Client client(server_->socket_path());
  // A newline-free request longer than the frame limit: the reader must
  // answer bad_request and drop the connection instead of buffering it.
  client.send_line(R"({"id":"big","op":"ping","pad":")" +
                   std::string(4096, 'x') + "\"}");
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  const json::Value response = json::parse(line);
  EXPECT_FALSE(response.boolean("ok", true));
  EXPECT_EQ(response.text("code", ""), "bad_request");
  EXPECT_NE(response.text("error", "").find("frame limit"),
            std::string::npos);
  EXPECT_FALSE(client.read_line(line));  // connection torn down
}

TEST_F(ServiceTest, TcpListenerSpeaksTheSameProtocol) {
  start(1, 8, [](ServerOptions& options) {
    options.tcp_endpoint = "127.0.0.1:0";  // ephemeral port
  });
  for (int i = 0; i < 400 && server_->tcp_port() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(server_->tcp_port(), 0);

  Client client("127.0.0.1", server_->tcp_port());
  client.send_line(R"({"id":"t","op":"ping"})");
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  const json::Value response = json::parse(line);
  EXPECT_TRUE(response.boolean("ok", false));
  EXPECT_EQ(response.text("payload", ""), "pong");
}

TEST_F(ServiceTest, WorkerRegistryTracksRegistrationsInline) {
  start(1, 8);
  // Registration is a control op: answered inline even though the only
  // job worker is free to be busy.
  const auto ack = call(
      R"({"id":"r","op":"worker_register","endpoint":"127.0.0.1:9999"})");
  EXPECT_TRUE(ack.boolean("ok", false));

  const auto listing = call(R"({"id":"w","op":"workers"})");
  ASSERT_TRUE(listing.boolean("ok", false));
  const json::Value document = json::parse(listing.text("payload", "{}"));
  EXPECT_EQ(document.text("schema", ""), "cwsp-workers-v1");
  EXPECT_NE(listing.text("payload", "").find("127.0.0.1:9999"),
            std::string::npos);

  EXPECT_EQ(call(R"({"id":"r2","op":"worker_register"})").text("code", ""),
            "bad_request");  // endpoint is required
}

TEST_F(ServiceTest, ClientDialRetriesWithCappedBackoff) {
  // Nothing listens on port 1: every attempt fails, with one backoff
  // sleep between consecutive attempts.
  DialOptions dial;
  dial.attempts = 3;
  dial.backoff_base_ms = 1.0;
  dial.backoff_cap_ms = 2.0;
  dial.connect_timeout_ms = 200.0;
  std::vector<double> delays;
  dial.on_backoff = [&delays](double ms) { delays.push_back(ms); };
  EXPECT_THROW((void)Client::dial("127.0.0.1:1", dial), Error);
  ASSERT_EQ(delays.size(), 2u);
  for (const double ms : delays) {
    EXPECT_GT(ms, 0.0);
    EXPECT_LE(ms, 2.0);
  }

  // A reachable endpoint connects on the first attempt: no backoff.
  start(1, 8);
  delays.clear();
  const auto client = Client::dial(server_->socket_path(), dial);
  client->send_line(R"({"id":"p","op":"ping"})");
  std::string line;
  EXPECT_TRUE(client->read_line(line));
  EXPECT_TRUE(delays.empty());
}

}  // namespace
}  // namespace cwsp::service
