// Electrical measurement utilities layered on MiniSpice: CWSP element
// delay and critical charge.

#include <gtest/gtest.h>

#include "spice/subckt.hpp"

namespace cwsp::spice {
namespace {

using namespace cwsp::literals;

TEST(CwspDelay, UpsizedElementDrivesFasterIntoFixedLoad) {
  const auto small = measure_cwsp_delay(1.0, 1.0, 10.0_fF);
  const auto sized_100 = measure_cwsp_delay(cal::kCwspPmosMultQLow,
                                            cal::kCwspNmosMultQLow, 10.0_fF);
  EXPECT_GT(small.value(), sized_100.value());
  EXPECT_GT(sized_100.value(), 0.0);
}

TEST(CwspDelay, Q150SizingFasterThanQ100IntoSameLoad) {
  // The paper's Δ drops from 415 ps to 405 ps at Q=150 fC because the
  // 40/16 element is faster than the 30/12 one (DESIGN.md §5).
  const auto d100 = measure_cwsp_delay(cal::kCwspPmosMultQLow,
                                       cal::kCwspNmosMultQLow, 20.0_fF);
  const auto d150 = measure_cwsp_delay(cal::kCwspPmosMultQHigh,
                                       cal::kCwspNmosMultQHigh, 20.0_fF);
  EXPECT_LT(d150.value(), d100.value());
}

TEST(CwspDelay, GrowsWithLoad) {
  const auto light = measure_cwsp_delay(30.0, 12.0, 5.0_fF);
  const auto heavy = measure_cwsp_delay(30.0, 12.0, 50.0_fF);
  EXPECT_GT(heavy.value(), light.value());
}

TEST(CriticalCharge, MatchesGlitchOnset) {
  const auto qcrit = measure_critical_charge();
  // Just below: no logic-level glitch. Just above: one appears.
  const auto below = measure_strike_glitch_width(
      Femtocoulombs(qcrit.value() * 0.9));
  const auto above = measure_strike_glitch_width(
      Femtocoulombs(qcrit.value() * 1.2));
  EXPECT_DOUBLE_EQ(below.value(), 0.0);
  EXPECT_GT(above.value(), 0.0);
}

TEST(CriticalCharge, ScalesWithDeviceStrength) {
  SpiceTech strong;
  strong.kp_n_min *= 2.0;
  strong.kp_p_min *= 2.0;
  strong.c_node_ff *= 2.0;
  EXPECT_GT(measure_critical_charge(strong).value(),
            measure_critical_charge().value());
}

}  // namespace
}  // namespace cwsp::spice
