// Static SET-coverage certifier: window-dataflow units on hand-built
// reconvergent netlists, full-classification checks on s27, and the two
// soundness cross-checks against the protection-protocol oracle —
// proved-covered sites survive an exhaustive in-envelope strike sweep,
// and every proved-escape witness replays to a real escape.

#include <gtest/gtest.h>

#include <string>

#include "analysis/certify.hpp"
#include "analysis/glitch_window.hpp"
#include "campaign/minimize.hpp"
#include "cwsp/protection_sim.hpp"
#include "cwsp/timing.hpp"
#include "iscas_data.hpp"
#include "netlist/bench_parser.hpp"
#include "set/strike_plan.hpp"
#include "sta/sta.hpp"

namespace cwsp {
namespace {

using analysis::CoveredReason;
using analysis::GlitchWindow;
using analysis::SiteVerdict;

// ---- pin_sensitizable ----------------------------------------------
// Truth tables are FlatNetlistView-encoded: bit i of the table is the
// output under input assignment i (input pin p contributes bit p of i).
constexpr std::uint16_t kAnd2 = 0x8;
constexpr std::uint16_t kXor2 = 0x6;

TEST(PinSensitizable, AndGateNeedsTheOtherInputHigh) {
  // With pin 1 free, some assignment (pin1=1) sensitizes pin 0.
  EXPECT_TRUE(analysis::pin_sensitizable(kAnd2, 2, 0, 0b00, 0b00));
  // Pin 1 pinned to constant 0 masks pin 0 entirely.
  EXPECT_FALSE(analysis::pin_sensitizable(kAnd2, 2, 0, 0b10, 0b00));
  // Pin 1 pinned to constant 1 sensitizes it again.
  EXPECT_TRUE(analysis::pin_sensitizable(kAnd2, 2, 0, 0b10, 0b10));
}

TEST(PinSensitizable, ConstantFunctionsNeverSensitize) {
  EXPECT_FALSE(analysis::pin_sensitizable(0x0, 2, 0, 0b00, 0b00));
  EXPECT_FALSE(analysis::pin_sensitizable(0xF, 2, 1, 0b00, 0b00));
}

TEST(PinSensitizable, XorSensitizesUnderEveryConstant) {
  EXPECT_TRUE(analysis::pin_sensitizable(kXor2, 2, 0, 0b10, 0b00));
  EXPECT_TRUE(analysis::pin_sensitizable(kXor2, 2, 0, 0b10, 0b10));
  EXPECT_TRUE(analysis::pin_sensitizable(kXor2, 2, 1, 0b01, 0b01));
}

// ---- window dataflow ------------------------------------------------

// Reconvergent fanout with unequal path delays: s forks into a 3-NOT
// chain and a single NOT, remerging at m.
constexpr const char* kReconvergent = R"(
INPUT(a)
INPUT(b)
OUTPUT(q)
s = AND(a, b)
x1 = NOT(s)
x2 = NOT(x1)
x3 = NOT(x2)
y = NOT(s)
m = AND(x3, y)
q = DFF(m)
)";

class WindowDataflowTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(WindowDataflowTest, ReconvergenceMarksTheMergeAmbiguous) {
  const auto netlist = parse_bench_string(kReconvergent, lib_, "reconv");
  const FlatNetlistView view(netlist);
  const auto sta = run_sta(netlist);
  const NetId site = *netlist.find_net("s");

  const auto sw = analysis::propagate_windows(view, sta.gate_delay_ps, site);

  // The site itself: the strike window, untouched.
  const GlitchWindow& at_site = sw.at(site);
  EXPECT_TRUE(at_site.reachable);
  EXPECT_FALSE(at_site.ambiguous);
  EXPECT_DOUBLE_EQ(at_site.earliest_ps, 0.0);
  EXPECT_DOUBLE_EQ(at_site.latest_ps, 0.0);

  // Single-path nets stay unambiguous and accumulate delay.
  const GlitchWindow& at_x1 = sw.at(*netlist.find_net("x1"));
  EXPECT_TRUE(at_x1.reachable);
  EXPECT_FALSE(at_x1.ambiguous);
  EXPECT_GT(at_x1.earliest_ps, 0.0);
  EXPECT_DOUBLE_EQ(at_x1.earliest_ps, at_x1.latest_ps);

  // The merge: both paths arrive, with the path-delay spread as slack.
  const GlitchWindow& at_m = sw.at(*netlist.find_net("m"));
  EXPECT_TRUE(at_m.reachable);
  EXPECT_TRUE(at_m.ambiguous);
  EXPECT_NE(at_m.merge_gate, GlitchWindow::kNone);
  EXPECT_GT(at_m.slack_ps(), 0.0);
  // Earliest via the short path (y), latest via the three-NOT chain.
  const GlitchWindow& at_y = sw.at(*netlist.find_net("y"));
  const GlitchWindow& at_x3 = sw.at(*netlist.find_net("x3"));
  EXPECT_LE(at_y.earliest_ps, at_m.earliest_ps);
  EXPECT_GE(at_m.latest_ps, at_x3.latest_ps);

  // Nets outside the cone are unreachable.
  EXPECT_FALSE(sw.at(*netlist.find_net("a")).reachable);
}

TEST_F(WindowDataflowTest, WitnessPathBacktracksToTheSite) {
  const auto netlist = parse_bench_string(kReconvergent, lib_, "reconv");
  const FlatNetlistView view(netlist);
  const auto sta = run_sta(netlist);
  const NetId site = *netlist.find_net("s");
  const auto sw = analysis::propagate_windows(view, sta.gate_delay_ps, site);

  const NetId x3 = *netlist.find_net("x3");
  const auto path = analysis::witness_path(sw, x3);
  ASSERT_EQ(path.size(), 4u);  // s > x1 > x2 > x3
  EXPECT_EQ(path.front(), site);
  EXPECT_EQ(path[1], *netlist.find_net("x1"));
  EXPECT_EQ(path[2], *netlist.find_net("x2"));
  EXPECT_EQ(path.back(), x3);

  // Unreachable endpoint: empty path.
  EXPECT_TRUE(analysis::witness_path(sw, *netlist.find_net("a")).empty());
}

// ---- certify on s27 -------------------------------------------------

class CertifyS27Test : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(testdata::kS27, lib_, "s27");
  core::ProtectionParams params_ = core::ProtectionParams::q100();

  [[nodiscard]] Picoseconds period() const {
    const auto sta = run_sta(netlist_);
    return std::max(core::hardened_clock_period(sta.dmax, lib_),
                    core::min_clock_period_for_delta(params_));
  }
};

TEST_F(CertifyS27Test, DefaultEnvelopeClassifiesEverySiteCovered) {
  const auto result =
      analysis::certify_design(netlist_, params_, period());

  const auto sites = set::strike_sites(netlist_);
  ASSERT_EQ(result.sites.size(), sites.size());
  EXPECT_EQ(result.covered_count(), sites.size());
  EXPECT_EQ(result.escape_count(), 0u);
  EXPECT_EQ(result.unknown_count(), 0u);
  for (const auto& cert : result.sites) {
    EXPECT_EQ(cert.verdict, SiteVerdict::kProvedCovered);
    // W == δ: the protocol repairs the whole envelope, except for sites
    // with no path to state at all.
    EXPECT_TRUE(cert.reason == CoveredReason::kCwspEnvelope ||
                cert.reason == CoveredReason::kNoPath);
    if (!cert.margin_unbounded) {
      EXPECT_GE(cert.margin_ps, 0.0);
    }
  }
}

TEST_F(CertifyS27Test, ReportsAreDeterministic) {
  analysis::CertifyOptions options;
  options.envelope_ps = 900.0;
  const auto a = analysis::certify_design(netlist_, params_, period(),
                                          options);
  const auto b = analysis::certify_design(netlist_, params_, period(),
                                          options);
  EXPECT_EQ(analysis::format_certify_json(a, netlist_),
            analysis::format_certify_json(b, netlist_));
}

TEST_F(CertifyS27Test, ProvedCoveredAgreesWithExhaustiveInEnvelopeSweep) {
  // Certifier claim: at the default envelope (W = δ) every site is
  // proved-covered. Oracle: protocol replay of in-envelope strikes at
  // every site across the cycle must never silently corrupt an output.
  const auto result =
      analysis::certify_design(netlist_, params_, period());
  ASSERT_EQ(result.covered_count(), result.sites.size());

  const core::ProtectionSim psim(netlist_, params_, period());
  const std::vector<std::vector<bool>> inputs = {
      {false, false, false, false}, {true, false, true, false},
      {false, true, true, true},    {true, true, false, true},
      {true, true, true, true},     {false, true, false, false},
  };
  const double period_ps = period().value();
  for (const NetId site : set::strike_sites(netlist_)) {
    for (const double frac : {0.0, 0.3, 0.6, 0.9}) {
      core::ScheduledStrike strike;
      strike.cycle = 1;
      strike.target = core::StrikeTarget::kFunctional;
      strike.strike.node = site;
      strike.strike.start = Picoseconds(frac * period_ps);
      strike.strike.width = params_.delta;
      const auto run = psim.run(inputs, {strike});
      EXPECT_TRUE(run.recovered())
          << "in-envelope strike escaped at site " << site.value()
          << " start-fraction " << frac
          << " — contradicts proved-covered";
    }
  }
}

TEST_F(CertifyS27Test, EscapeWitnessesReplayThroughTheCampaignEngine) {
  analysis::CertifyOptions options;
  options.envelope_ps = 900.0;  // beyond δ: escapes must exist on s27
  options.artifact_dir =
      ::testing::TempDir() + "cwsp_certify_repro";
  const auto result = analysis::certify_design(netlist_, params_,
                                               period(), options);

  EXPECT_GE(result.escape_count(), 1u);
  for (const auto& cert : result.sites) {
    if (cert.verdict == SiteVerdict::kProvedEscape) {
      // An escape needs width > δ (everything narrower is repaired).
      EXPECT_GT(cert.witness_width_ps, params_.delta.value());
      EXPECT_FALSE(cert.path.empty());
      ASSERT_FALSE(cert.repro_spec_path.empty());
      EXPECT_TRUE(campaign::replay_repro(cert.repro_spec_path, lib_))
          << "witness at site " << cert.site.value()
          << " did not replay to a real escape";
    } else if (cert.verdict == SiteVerdict::kUnknown) {
      // Unknown verdicts always identify their cause.
      EXPECT_FALSE(cert.note.empty());
    }
  }
}

TEST_F(CertifyS27Test, SubEqSixPeriodDegradesToUnknownInsteadOfThrowing) {
  analysis::CertifyOptions options;
  options.envelope_ps = 900.0;
  const Picoseconds short_period(
      core::min_clock_period_for_delta(params_).value() - 100.0);
  const auto result = analysis::certify_design(netlist_, params_,
                                               short_period, options);
  // Dangerous sites cannot be confirmed (ProtectionSim would reject the
  // period), so they degrade to unknown with an Eq. 6 note.
  EXPECT_EQ(result.escape_count(), 0u);
  EXPECT_GE(result.unknown_count(), 1u);
  bool saw_eq6_note = false;
  for (const auto& cert : result.sites) {
    if (cert.verdict == SiteVerdict::kUnknown &&
        cert.note.find("Eq. 6") != std::string::npos) {
      saw_eq6_note = true;
    }
  }
  EXPECT_TRUE(saw_eq6_note);
}

// c17 is purely combinational: no state, nothing to certify — every site
// is no-path covered.
TEST(CertifyC17Test, CombinationalDesignIsTriviallyCovered) {
  const CellLibrary lib = make_default_library();
  const auto netlist = parse_bench_string(testdata::kC17, lib, "c17");
  const auto params = core::ProtectionParams::q100();
  const auto sta = run_sta(netlist);
  const Picoseconds period =
      std::max(core::hardened_clock_period(sta.dmax, lib),
               core::min_clock_period_for_delta(params));

  analysis::CertifyOptions options;
  options.envelope_ps = 2000.0;  // far beyond δ — still nothing to hit
  const auto result =
      analysis::certify_design(netlist, params, period, options);
  ASSERT_EQ(result.sites.size(), set::strike_sites(netlist).size());
  EXPECT_EQ(result.covered_count(), result.sites.size());
  for (const auto& cert : result.sites) {
    EXPECT_EQ(cert.reason, CoveredReason::kNoPath);
    EXPECT_TRUE(cert.margin_unbounded);
  }
}

}  // namespace
}  // namespace cwsp
