// Differential tests of the compiled simulation kernel against the
// legacy scalar simulators, over fuzzed netlists: CompiledEventSim must
// reproduce EventSim bit-for-bit (waveforms, latched values, aperture
// flags — strike and no-strike), LogicSim64 must agree with LogicSim in
// every lane, and ProtectionSim must produce identical protocol runs on
// either kernel. Plus unit tests of the golden-waveform cache.

#include <gtest/gtest.h>

#include "cwsp/protection_sim.hpp"
#include "netlist_fuzz.hpp"
#include "set/strike_plan.hpp"
#include "sim/compiled_kernel.hpp"
#include "sim/event_sim.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp {
namespace {

std::vector<bool> random_bits(std::size_t n, Rng& rng) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.next_bool();
  return bits;
}

void expect_cycles_equal(const sim::CycleResult& a, const sim::CycleResult& b,
                         const std::string& context) {
  EXPECT_EQ(a.golden_d, b.golden_d) << context;
  EXPECT_EQ(a.latched_d, b.latched_d) << context;
  EXPECT_EQ(a.aperture_violation, b.aperture_violation) << context;
  EXPECT_EQ(a.golden_po, b.golden_po) << context;
  EXPECT_EQ(a.struck_po, b.struck_po) << context;
  EXPECT_EQ(a.glitch_reached_endpoint, b.glitch_reached_endpoint) << context;
}

class CompiledKernelDifferential
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(CompiledKernelDifferential, MatchesEventSimWithoutStrike) {
  const auto netlist = testing::make_random_netlist(lib_, GetParam());
  const sim::EventSim legacy(netlist);
  const sim::CompiledEventSim compiled(netlist);
  Rng rng(GetParam() ^ 0x5117);

  for (int trial = 0; trial < 8; ++trial) {
    const auto pis = random_bits(netlist.primary_inputs().size(), rng);
    const auto ffs = random_bits(netlist.num_flip_flops(), rng);
    const Picoseconds capture(1200.0 + 100.0 * trial);
    expect_cycles_equal(
        legacy.simulate_cycle(pis, ffs, capture, std::nullopt),
        compiled.simulate_cycle(pis, ffs, capture, std::nullopt),
        "seed " + std::to_string(GetParam()) + " trial " +
            std::to_string(trial));
  }
}

TEST_P(CompiledKernelDifferential, MatchesEventSimUnderStrikes) {
  const auto netlist = testing::make_random_netlist(lib_, GetParam());
  const sim::EventSim legacy(netlist);
  const sim::CompiledEventSim compiled(netlist);
  Rng rng(GetParam() ^ 0xbeef);

  // Strike every net in turn: exercises cones of every shape, including
  // nets with empty fanout (PO-only) and full-depth cones.
  for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
    const auto pis = random_bits(netlist.primary_inputs().size(), rng);
    const auto ffs = random_bits(netlist.num_flip_flops(), rng);
    set::Strike strike;
    strike.node = NetId{n};
    strike.start = Picoseconds(rng.next_double_in(0.0, 1500.0));
    strike.width = Picoseconds(rng.next_double_in(1.0, 600.0));
    const Picoseconds capture(1400.0);
    const std::string context = "seed " + std::to_string(GetParam()) +
                                " struck net " + std::to_string(n);

    expect_cycles_equal(legacy.simulate_cycle(pis, ffs, capture, strike),
                        compiled.simulate_cycle(pis, ffs, capture, strike),
                        context);

    // Waveform on every net — inside and outside the cone — must match
    // both initial value and the full transition list.
    for (std::size_t m = 0; m < netlist.num_nets(); ++m) {
      const auto wl = legacy.net_waveform(pis, ffs, strike, NetId{m});
      const auto wc = compiled.net_waveform(pis, ffs, strike, NetId{m});
      ASSERT_EQ(wl.initial(), wc.initial()) << context << " net " << m;
      ASSERT_EQ(wl.transitions(), wc.transitions()) << context << " net " << m;
    }
  }
}

TEST_P(CompiledKernelDifferential, LogicSim64LanesMatchScalarLogicSim) {
  const auto netlist = testing::make_random_netlist(lib_, GetParam());
  sim::LogicSim64 wide(netlist);
  Rng rng(GetParam() ^ 0x64);

  // Three clocked steps: lane l of the wide simulator must track an
  // independent scalar simulation, including FF state evolution.
  std::vector<sim::LogicSim> scalars;
  scalars.reserve(8);
  for (int l = 0; l < 8; ++l) scalars.emplace_back(netlist);

  for (int step = 0; step < 3; ++step) {
    std::vector<std::vector<bool>> lane_inputs(8);
    for (int l = 0; l < 8; ++l) {
      lane_inputs[l] = random_bits(netlist.primary_inputs().size(), rng);
      for (std::size_t i = 0; i < lane_inputs[l].size(); ++i) {
        wide.set_input_lane(i, l, lane_inputs[l][i]);
      }
      scalars[l].set_inputs(lane_inputs[l]);
    }
    wide.evaluate();
    for (int l = 0; l < 8; ++l) scalars[l].evaluate();

    for (int l = 0; l < 8; ++l) {
      for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
        ASSERT_EQ(wide.value(NetId{n}, l), scalars[l].value(NetId{n}))
            << "seed " << GetParam() << " step " << step << " lane " << l
            << " net " << n;
      }
      for (std::size_t k = 0; k < netlist.primary_outputs().size(); ++k) {
        EXPECT_EQ((wide.output_word(k) >> l) & 1u,
                  scalars[l].output_values()[k] ? 1u : 0u);
      }
    }
    wide.clock();
    for (int l = 0; l < 8; ++l) scalars[l].clock();
    for (int l = 0; l < 8; ++l) {
      for (std::size_t f = 0; f < netlist.num_flip_flops(); ++f) {
        EXPECT_EQ((wide.ff_word(f) >> l) & 1u,
                  scalars[l].ff_state()[f] ? 1u : 0u);
      }
    }
  }
}

TEST_P(CompiledKernelDifferential, ProtectionRunsIdenticalOnEitherKernel) {
  testing::FuzzOptions fuzz;
  fuzz.num_flip_flops = 3;
  const auto netlist = testing::make_random_netlist(lib_, GetParam(), fuzz);
  const auto params = core::ProtectionParams::q100();
  const Picoseconds period(2400.0);

  core::ProtectionSimOptions legacy_opts;
  legacy_opts.use_compiled_kernel = false;
  core::ProtectionSimOptions compiled_opts;
  compiled_opts.use_compiled_kernel = true;
  const core::ProtectionSim legacy(netlist, params, period, legacy_opts);
  const core::ProtectionSim compiled(netlist, params, period, compiled_opts);

  Rng rng(GetParam() ^ 0xc0de);
  const auto sites = set::strike_sites(netlist);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::vector<bool>> inputs(6);
    for (auto& vec : inputs) {
      vec = random_bits(netlist.primary_inputs().size(), rng);
    }
    core::ScheduledStrike strike;
    strike.cycle = rng.next_below(inputs.size());
    strike.target = core::StrikeTarget::kFunctional;
    strike.strike.node = sites[rng.next_below(sites.size())];
    strike.strike.start = Picoseconds(rng.next_double_in(0.0, period.value()));
    strike.strike.width = Picoseconds(rng.next_double_in(50.0, 500.0));

    const auto rl = legacy.run(inputs, {strike});
    const auto rc = compiled.run(inputs, {strike});
    EXPECT_EQ(rl.bubbles, rc.bubbles);
    EXPECT_EQ(rl.detected_errors, rc.detected_errors);
    EXPECT_EQ(rl.spurious_recomputes, rc.spurious_recomputes);
    EXPECT_EQ(rl.silent_corruptions, rc.silent_corruptions);
    EXPECT_EQ(rl.livelocked, rc.livelocked);
    EXPECT_EQ(rl.total_cycles, rc.total_cycles);
    EXPECT_EQ(rl.golden_outputs, rc.golden_outputs);
    EXPECT_EQ(rl.committed_outputs, rc.committed_outputs);

    const auto ul = legacy.run_unprotected(inputs, {strike});
    const auto uc = compiled.run_unprotected(inputs, {strike});
    EXPECT_EQ(ul.corrupted_cycles, uc.corrupted_cycles);
    EXPECT_EQ(ul.outputs, uc.outputs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledKernelDifferential,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(CompiledKernelTest, GoldenEvalMatchesLogicSimStep) {
  const CellLibrary lib = make_default_library();
  const auto netlist = testing::make_random_netlist(lib, 42);
  const sim::CompiledEventSim compiled(netlist);
  sim::LogicSim scalar(netlist);
  Rng rng(42);

  std::vector<bool> q(netlist.num_flip_flops(), false);
  for (int step = 0; step < 6; ++step) {
    const auto pis = random_bits(netlist.primary_inputs().size(), rng);
    scalar.set_ff_state(q);
    scalar.set_inputs(pis);
    scalar.evaluate();
    const sim::GoldenCycle& g = compiled.golden_eval(pis, q);
    EXPECT_EQ(g.po, scalar.output_values());
    scalar.clock();
    EXPECT_EQ(g.ff_d, scalar.ff_state());
    q = g.ff_d;
  }
}

TEST(CompiledKernelTest, GoldenCacheHitsOnRepeatedStimulus) {
  const CellLibrary lib = make_default_library();
  const auto netlist = testing::make_random_netlist(lib, 5);
  const sim::CompiledEventSim compiled(netlist);
  const std::vector<bool> pis(netlist.primary_inputs().size(), true);
  const std::vector<bool> ffs(netlist.num_flip_flops(), false);

  (void)compiled.simulate_cycle(pis, ffs, Picoseconds(1500.0), std::nullopt);
  EXPECT_EQ(compiled.golden_cache_misses(), 1u);
  EXPECT_EQ(compiled.golden_cache_hits(), 0u);
  for (int i = 0; i < 5; ++i) {
    (void)compiled.simulate_cycle(pis, ffs, Picoseconds(1500.0), std::nullopt);
  }
  EXPECT_EQ(compiled.golden_cache_misses(), 1u);
  EXPECT_EQ(compiled.golden_cache_hits(), 5u);

  // A different FF state is a different key.
  std::vector<bool> other = ffs;
  if (!other.empty()) {
    other[0] = !other[0];
    (void)compiled.simulate_cycle(pis, other, Picoseconds(1500.0),
                                  std::nullopt);
    EXPECT_EQ(compiled.golden_cache_misses(), 2u);
  }
}

TEST(CompiledKernelTest, GoldenCacheCapacityBoundsPopulation) {
  const CellLibrary lib = make_default_library();
  testing::FuzzOptions fuzz;
  fuzz.num_inputs = 8;
  const auto netlist = testing::make_random_netlist(lib, 6, fuzz);
  sim::CompiledEventSim compiled(netlist);
  compiled.set_golden_cache_capacity(4);

  Rng rng(6);
  std::vector<bool> ffs(netlist.num_flip_flops(), false);
  // Far more distinct stimuli than capacity: the sim must keep answering
  // correctly (differential check) while the cache stays bounded.
  sim::LogicSim scalar(netlist);
  for (int i = 0; i < 64; ++i) {
    const auto pis = random_bits(netlist.primary_inputs().size(), rng);
    const auto cycle =
        compiled.simulate_cycle(pis, ffs, Picoseconds(1500.0), std::nullopt);
    scalar.set_ff_state(ffs);
    scalar.set_inputs(pis);
    scalar.evaluate();
    EXPECT_EQ(cycle.golden_po, scalar.output_values());
  }
  EXPECT_GE(compiled.golden_cache_misses(), 60u);
}

TEST(CompiledKernelTest, SharedContextAcrossInstances) {
  const CellLibrary lib = make_default_library();
  const auto netlist = testing::make_random_netlist(lib, 9);
  const auto context = sim::CompiledKernelContext::build(netlist);
  const sim::CompiledEventSim a(netlist, context);
  const sim::CompiledEventSim b(netlist, context);
  Rng rng(9);
  const auto pis = random_bits(netlist.primary_inputs().size(), rng);
  const auto ffs = random_bits(netlist.num_flip_flops(), rng);
  set::Strike strike;
  strike.node = netlist.gate(GateId{0}).output;
  strike.start = Picoseconds(300.0);
  strike.width = Picoseconds(250.0);
  expect_cycles_equal(a.simulate_cycle(pis, ffs, Picoseconds(1400.0), strike),
                      b.simulate_cycle(pis, ffs, Picoseconds(1400.0), strike),
                      "shared context");
}

}  // namespace
}  // namespace cwsp
