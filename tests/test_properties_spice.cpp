// Property sweeps over the MiniSpice engine: charge conservation of the
// strike profile, RC integration convergence, and strike-response
// monotonicity across the charge range.

#include <gtest/gtest.h>

#include <cmath>

#include "set/pulse.hpp"
#include "spice/subckt.hpp"

namespace cwsp {
namespace {

using namespace cwsp::literals;

struct PulseCase {
  double q_fc;
  double tau_alpha;
  double tau_beta;
};

class PulseProperties : public ::testing::TestWithParam<PulseCase> {};

TEST_P(PulseProperties, IntegratesToQ) {
  const auto& tc = GetParam();
  const set::DoubleExponentialPulse pulse(Femtocoulombs(tc.q_fc),
                                          Picoseconds(tc.tau_alpha),
                                          Picoseconds(tc.tau_beta));
  EXPECT_NEAR(pulse.charge_delivered(Picoseconds(50.0 * tc.tau_alpha)).value(),
              tc.q_fc, tc.q_fc * 1e-6);
}

TEST_P(PulseProperties, CurrentNonNegativeAndSinglePeaked) {
  const auto& tc = GetParam();
  const set::DoubleExponentialPulse pulse(Femtocoulombs(tc.q_fc),
                                          Picoseconds(tc.tau_alpha),
                                          Picoseconds(tc.tau_beta));
  const double t_peak = pulse.peak_time().value();
  double prev = 0.0;
  bool rising = true;
  for (double t = 1.0; t < 10.0 * tc.tau_alpha; t += tc.tau_beta / 4.0) {
    const double i = pulse.current_ma(Picoseconds(t));
    EXPECT_GE(i, 0.0);
    if (rising && t > t_peak + tc.tau_beta) rising = false;
    if (!rising) {
      EXPECT_LE(i, prev + 1e-12) << "t=" << t;
    }
    prev = i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PulseProperties,
    ::testing::Values(PulseCase{50.0, 200.0, 50.0},
                      PulseCase{100.0, 200.0, 50.0},
                      PulseCase{150.0, 200.0, 50.0},
                      PulseCase{100.0, 300.0, 20.0},
                      PulseCase{250.0, 150.0, 75.0},
                      PulseCase{10.0, 400.0, 10.0}));

class RcConvergence : public ::testing::TestWithParam<double> {};

TEST_P(RcConvergence, BackwardEulerApproachesAnalytic) {
  // RC step response; the BE error shrinks with dt.
  const double dt = GetParam();
  spice::Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_voltage_source(
      "V1", in, spice::kGround,
      spice::SourceFunction::pulse(0.0, 1.0, 0.0, dt / 10.0, 1e6, 1.0));
  c.add_resistor("R1", in, out, 2.0_kohm);
  c.add_capacitor("C1", out, spice::kGround, 10.0_fF);  // tau = 20 ps

  spice::TransientOptions options;
  options.t_stop_ps = 120.0;
  options.dt_ps = dt;
  const auto result = spice::run_transient(c, options, {out});
  const double analytic = 1.0 - std::exp(-100.0 / 20.0);
  // First-order method: error bounded by ~dt/tau.
  EXPECT_NEAR(result.probe(out).value_at(100.0), analytic,
              0.6 * dt / 20.0 + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Steps, RcConvergence,
                         ::testing::Values(2.0, 1.0, 0.5, 0.25, 0.1));

class StrikeMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(StrikeMonotonicity, PeakAndWidthGrowWithCharge) {
  const double q = GetParam();
  const auto narrow = spice::strike_waveform(Femtocoulombs(q));
  const auto wide = spice::strike_waveform(Femtocoulombs(q + 30.0));
  EXPECT_GE(wide.peak(), narrow.peak() - 1e-6);
  EXPECT_GE(wide.time_above(0.5), narrow.time_above(0.5) - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Charges, StrikeMonotonicity,
                         ::testing::Values(30.0, 60.0, 90.0, 120.0, 150.0));

}  // namespace
}  // namespace cwsp
