#include "set/ser.hpp"

#include <gtest/gtest.h>

namespace cwsp::set {
namespace {

using namespace cwsp::literals;

class SerTest : public ::testing::Test {
 protected:
  SerAnalyzer analyzer_;
};

TEST_F(SerTest, Footnote2DoubleStrikeProbability) {
  // Paper footnote 2: area 473.4e-8 cm² (= 473.4 µm²... the paper's value
  // in cm² corresponds to 4.734e-6 cm²? No: 473.4e-8 cm² = 4.734e-6 cm² =
  // 473.4 µm²·1e-2... We work directly in µm²: 473.4e-8 cm² / 1e-8 = 473.4
  // µm²), period 5.5 ns → double-strike probability 4.78e-10.
  const SquareMicrons area{473.4};
  const Picoseconds period{5500.0};
  EXPECT_NEAR(analyzer_.consecutive_cycle_strike_probability(area, period),
              4.78e-10, 0.1e-10);
}

TEST_F(SerTest, StrikesPerYearScalesWithArea) {
  const double one = analyzer_.strikes_per_year(SquareMicrons(100.0));
  const double two = analyzer_.strikes_per_year(SquareMicrons(200.0));
  EXPECT_NEAR(two, 2.0 * one, 1e-9);
  // 100 µm² = 1e-6 cm² → 2.91e5 strikes/year.
  EXPECT_NEAR(one, 2.91e5, 1e0);
}

TEST_F(SerTest, PerCycleProbabilityConsistent) {
  const SquareMicrons area{473.4};
  const Picoseconds period{5500.0};
  const double per_cycle =
      analyzer_.strike_probability_per_cycle(area, period);
  EXPECT_NEAR(analyzer_.consecutive_cycle_strike_probability(area, period),
              2.0 * per_cycle, 1e-18);
}

TEST_F(SerTest, LetSpectrumMatchesPaperStatements) {
  // "largest population ≤ 20": the bulk of particles is below 20.
  EXPECT_LT(analyzer_.fraction_let_above(20.0), 1e-3);
  // ">30 exceedingly rare".
  EXPECT_LT(analyzer_.fraction_let_above(30.0), 1e-5);
  EXPECT_DOUBLE_EQ(analyzer_.fraction_let_above(0.0), 1.0);
  // Monotone decreasing.
  EXPECT_GT(analyzer_.fraction_let_above(5.0),
            analyzer_.fraction_let_above(10.0));
}

TEST_F(SerTest, ChargeFractionUsesPaperRelation) {
  // Q = 207.2 fC corresponds to LET 10 at t = 2 µm (0.01036·10·2 pC).
  const double direct = analyzer_.fraction_let_above(10.0);
  EXPECT_NEAR(analyzer_.fraction_charge_above(Femtocoulombs(207.2)), direct,
              1e-12);
}

TEST_F(SerTest, GlitchEscapeFractionMonotone) {
  const double wide = analyzer_.fraction_glitch_wider_than(600.0_ps);
  const double narrow = analyzer_.fraction_glitch_wider_than(300.0_ps);
  EXPECT_LT(wide, narrow);
  EXPECT_DOUBLE_EQ(analyzer_.fraction_glitch_wider_than(Picoseconds(0.0)),
                   1.0);
}

TEST_F(SerTest, HardenedSerFarBelowUnprotected) {
  const auto report =
      analyzer_.analyze(SquareMicrons(473.4), 500.0_ps, 0.2);
  EXPECT_GT(report.strikes_per_year, 0.0);
  EXPECT_GT(report.unprotected_errors_per_year,
            report.hardened_errors_per_year);
  EXPECT_GT(report.improvement_factor, 10.0);
  EXPECT_GT(report.hardened_mtbf_years, report.unprotected_mtbf_years);
}

TEST_F(SerTest, ZeroFailureFractionGivesInfiniteMtbf) {
  const auto report =
      analyzer_.analyze(SquareMicrons(100.0), 500.0_ps, 0.0);
  EXPECT_EQ(report.unprotected_errors_per_year, 0.0);
  EXPECT_TRUE(std::isinf(report.unprotected_mtbf_years));
}

TEST_F(SerTest, InvalidInputsRejected) {
  EXPECT_THROW(
      (void)(analyzer_.analyze(SquareMicrons(100.0), 500.0_ps, 1.5)), Error);
  EXPECT_THROW((void)(analyzer_.fraction_let_above(-1.0)), Error);
  RadiationEnvironment bad;
  bad.let_scale = 0.0;
  EXPECT_THROW(SerAnalyzer{bad}, Error);
}

}  // namespace
}  // namespace cwsp::set
