#include "cwsp/harden.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp::core {
namespace {

class HardenTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();

  Netlist sequential_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q1)
OUTPUT(q2)
t1 = NAND(a, b)
t2 = XOR(t1, a)
q1 = DFF(t1)
q2 = DFF(t2)
)",
                                           lib_);

  Netlist combinational_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y1)
OUTPUT(y2)
OUTPUT(y3)
y1 = NAND(a, b)
y2 = NOR(a, b)
y3 = XOR(a, b)
)",
                                              lib_);
};

TEST_F(HardenTest, ProtectedFfCountSequential) {
  EXPECT_EQ(protected_ff_count(sequential_), 2);
}

TEST_F(HardenTest, ProtectedFfCountCombinationalUsesOutputs) {
  // Combinational benchmarks: each PO feeds a protected system FF.
  EXPECT_EQ(protected_ff_count(combinational_), 3);
}

TEST_F(HardenTest, ProtectionAreaMatchesCalibration) {
  const auto p100 = ProtectionParams::q100();
  // apex2 has 3 FFs: overhead = 3·1.3272 + 0.1666 = 4.1482 µm² (Table 2).
  EXPECT_NEAR(protection_area_for(3, p100).value(), 4.1482, 1e-9);
  const auto p150 = ProtectionParams::q150();
  // alu2, 6 FFs, Q=150: 6·1.4791 + 0.1666 = 9.0412 µm² (Table 1).
  EXPECT_NEAR(protection_area_for(6, p150).value(), 9.0412, 1e-9);
}

TEST_F(HardenTest, HardenedAreaIsRegularPlusProtection) {
  const auto design = harden(sequential_, ProtectionParams::q100());
  EXPECT_NEAR(design.hardened_area.value(),
              design.regular_area.value() + design.protection_area.value(),
              1e-12);
  EXPECT_GT(design.area_overhead_pct(), 0.0);
}

TEST_F(HardenTest, DelayPenaltyIs11p5ps) {
  const auto design = harden(sequential_, ProtectionParams::q100());
  EXPECT_NEAR(design.hardened_period.value() - design.regular_period.value(),
              11.5, 1e-9);
}

TEST_F(HardenTest, SmallCircuitHasPartialProtection) {
  // A tiny design has Dmax ≪ 1415 ps: glitch protection below designed δ.
  const auto design = harden(sequential_, ProtectionParams::q100());
  EXPECT_FALSE(design.full_designed_protection);
  EXPECT_LT(design.max_glitch.value(), 500.0);
}

TEST_F(HardenTest, BalancedPathAssumptionRaisesDmin) {
  const auto exact = harden(sequential_, ProtectionParams::q100());
  const auto balanced =
      harden_assuming_balanced_paths(sequential_, ProtectionParams::q100());
  EXPECT_DOUBLE_EQ(balanced.timing.dmin.value(),
                   0.8 * balanced.timing.dmax.value());
  EXPECT_DOUBLE_EQ(balanced.timing.dmax.value(), exact.timing.dmax.value());
}

TEST_F(HardenTest, Q150CostsMoreAreaThanQ100) {
  const auto d100 = harden(sequential_, ProtectionParams::q100());
  const auto d150 = harden(sequential_, ProtectionParams::q150());
  EXPECT_GT(d150.protection_area.value(), d100.protection_area.value());
  // Delay penalty identical (paper §4: "the delay penalty in both the
  // cases is same").
  EXPECT_DOUBLE_EQ(d150.hardened_period.value(), d100.hardened_period.value());
}

TEST_F(HardenTest, DescribeMentionsKeyFigures) {
  const auto design = harden(sequential_, ProtectionParams::q100());
  const auto text = describe(design);
  EXPECT_NE(text.find("protected flip-flops : 2"), std::string::npos);
  EXPECT_NE(text.find("CWSP(30/12)"), std::string::npos);
  EXPECT_NE(text.find("Delta"), std::string::npos);
}

}  // namespace
}  // namespace cwsp::core
