// End-to-end integration: the full pipeline a user of the library runs —
// parse/generate → analyse → harden → elaborate → inject faults →
// estimate SER — on one benchmark circuit, with every stage's outputs
// feeding the next.

#include <gtest/gtest.h>

#include "bencharness/generator.hpp"
#include "cwsp/coverage.hpp"
#include "cwsp/elaborate.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"
#include "netlist/transform.hpp"
#include "netlist/verilog_writer.hpp"
#include "netlist/writer.hpp"
#include "set/ser.hpp"
#include "sta/sta.hpp"

namespace cwsp {
namespace {

TEST(Integration, FullPipelineOnAlu2) {
  const CellLibrary lib = make_default_library();

  // 1. Generate the calibrated benchmark.
  const auto gen =
      bench::generate_benchmark(bench::find_benchmark("alu2"), lib);
  ASSERT_NEAR(gen.measured_dmax.value(), 1624.53789, 8.0);

  // 2. Optimisation passes must not change area materially (the
  //    generator emits no foldable logic) nor break validity.
  const auto [optimized, stats] = optimize(gen.netlist);
  EXPECT_EQ(stats.gates_after, stats.gates_before);

  // 3. Harden at Q = 100 fC; alu2's Dmax > 1415 ps ⇒ full protection.
  const auto params = core::ProtectionParams::q100();
  const auto design = core::harden_assuming_balanced_paths(gen.netlist,
                                                           params);
  EXPECT_TRUE(design.full_designed_protection);
  EXPECT_NEAR(design.area_overhead_pct(), 28.78, 0.2);
  EXPECT_LT(design.delay_overhead_pct(), 1.0);

  // 4. Elaborate the checker for this FF count and sanity-check it.
  const auto checker =
      core::elaborate_protection(core::protected_ff_count(gen.netlist), lib);
  EXPECT_EQ(checker.num_protected_ffs, 6);
  EXPECT_NO_THROW(checker.netlist.validate());

  // 5. Sequentialise and run a fault campaign: zero escapes.
  const auto seq = bench::clone_with_output_flip_flops(gen.netlist);
  const Picoseconds period =
      std::max(core::hardened_clock_period(gen.measured_dmax, lib),
               core::min_clock_period_for_delta(params));
  core::CampaignOptions options;
  options.runs = 15;
  options.cycles_per_run = 8;
  options.glitch_width = Picoseconds(450.0);
  options.seed = 77;
  const auto coverage =
      core::run_functional_campaign(seq, params, period, options);
  EXPECT_EQ(coverage.protected_failures, 0u);
  EXPECT_GT(coverage.unprotected_failures, 0u);

  // 6. SER estimate improves by a meaningful factor.
  set::SerAnalyzer analyzer;
  const auto ser = analyzer.analyze(
      design.hardened_area, design.max_glitch,
      coverage.unprotected_failure_pct() / 100.0);
  EXPECT_GT(ser.improvement_factor, 5.0);

  // 7. Exports parse/print without errors.
  EXPECT_FALSE(to_bench_string(gen.netlist).empty());
  EXPECT_NE(to_verilog_string(gen.netlist).find("endmodule"),
            std::string::npos);
}

TEST(Integration, ConsecutiveCycleStrikesAreTheKnownLimit) {
  // The paper's recovery rests on footnote 2: two strikes in consecutive
  // cycles are essentially impossible (p ≈ 4.78e-10). This test documents
  // the boundary: a second capture-corrupting strike in the suppressed
  // cycle right after a repair CAN slip through, because EQ is forced
  // high while it lands.
  const CellLibrary lib = make_default_library();
  Netlist n(lib, "toggle");
  const NetId a = n.add_primary_input("a");
  const GateId g1 = n.add_gate(lib.cell_for(CellKind::kXor2),
                               {a, n.add_net("q_fwd")}, "d");
  // Build the toggle by wiring the FF onto the forward-declared net.
  const FlipFlopId ff = n.add_flip_flop_onto(n.gate(g1).output,
                                             *n.find_net("q_fwd"));
  n.mark_primary_output(n.flip_flop(ff).q);
  n.validate();

  const auto params = core::ProtectionParams::q100();
  core::ProtectionSim sim(n, params, Picoseconds(1600.0));

  std::vector<std::vector<bool>> inputs(12, {true});
  auto strike_at = [&](std::size_t cycle) {
    core::ScheduledStrike s;
    s.cycle = cycle;
    s.target = core::StrikeTarget::kFunctional;
    s.strike.node = *n.find_net("d");
    s.strike.start = Picoseconds(1400.0);
    s.strike.width = Picoseconds(400.0);
    return s;
  };

  // Strike cycle 3 corrupts the capture; detection squashes cycle 4
  // (global cycle 4); a second strike during that suppressed cycle is the
  // double-strike scenario.
  const auto r = sim.run(inputs, {strike_at(3), strike_at(4)});
  // The protocol is allowed to fail here — and the environment makes the
  // case astronomically rare (footnote 2). What must NOT happen is a
  // livelock.
  EXPECT_FALSE(r.livelocked);
  set::SerAnalyzer analyzer;
  EXPECT_LT(analyzer.consecutive_cycle_strike_probability(
                SquareMicrons(473.4), Picoseconds(5500.0)),
            1e-9);
}

}  // namespace
}  // namespace cwsp
