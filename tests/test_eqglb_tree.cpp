#include "cwsp/eqglb_tree.hpp"

#include <gtest/gtest.h>

namespace cwsp::core {
namespace {

TEST(EqglbTree, SingleLevelUpTo35) {
  for (int n : {1, 6, 30, 32, 35}) {
    const auto t = build_eqglb_tree(n);
    EXPECT_EQ(t.levels, 1) << n;
    EXPECT_EQ(t.first_level_gates, 1) << n;
    EXPECT_DOUBLE_EQ(t.extra_area.value(), 0.0) << n;
    EXPECT_DOUBLE_EQ(t.delay.value(), cal::kDelayAnd1.value()) << n;
  }
}

TEST(EqglbTree, MultilevelAbove35) {
  const auto t36 = build_eqglb_tree(36);
  EXPECT_EQ(t36.levels, 2);
  EXPECT_EQ(t36.first_level_gates, 2);
  EXPECT_GT(t36.delay.value(), cal::kDelayAnd1.value());
}

TEST(EqglbTree, ChunkCountsMatchPaperCircuits) {
  // C7552: 108 FFs → 4 chunks; C5315: 123 FFs → 5 chunks.
  EXPECT_EQ(build_eqglb_tree(108).first_level_gates, 4);
  EXPECT_EQ(build_eqglb_tree(123).first_level_gates, 5);
}

TEST(EqglbTree, ExtraAreaMatchesTableResiduals) {
  // Fitted from Tables 1/2: +0.0392 µm² at 108 FFs, +0.0490 at 123.
  EXPECT_NEAR(build_eqglb_tree(108).extra_area.value(), 0.0392, 1e-4);
  EXPECT_NEAR(build_eqglb_tree(123).extra_area.value(), 0.0490, 1e-4);
}

TEST(EqglbTree, ExtraAreaMonotone) {
  double prev = -1.0;
  for (int n = 1; n <= 300; n += 7) {
    const double a = build_eqglb_tree(n).extra_area.value();
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(EqglbTree, RejectsNonPositive) {
  EXPECT_THROW((void)(build_eqglb_tree(0)), Error);
  EXPECT_THROW((void)(build_eqglb_tree(-3)), Error);
}

}  // namespace
}  // namespace cwsp::core
