#include "spice/delay_line.hpp"

#include <gtest/gtest.h>

namespace cwsp::spice {
namespace {

TEST(DelayLine, DelayGrowsWithResistance) {
  const double d_small = measure_delay_line(4, Kiloohms(1.0)).value();
  const double d_large = measure_delay_line(4, Kiloohms(50.0)).value();
  EXPECT_GT(d_large, d_small);
  EXPECT_GT(d_small, 0.0);
}

TEST(DelayLine, DelayGrowsWithSegments) {
  const double d4 = measure_delay_line(4, Kiloohms(20.0)).value();
  const double d8 = measure_delay_line(8, Kiloohms(20.0)).value();
  EXPECT_GT(d8, 1.7 * d4);
  EXPECT_LT(d8, 2.3 * d4);
}

TEST(DelayLine, CalibratesFourSegmentsToDelta500) {
  // Paper §4: 4 segments realise δ = 500 ps for Q = 100 fC.
  const auto design = calibrate_delay_line(4, Picoseconds(500.0));
  EXPECT_EQ(design.segments, 4);
  EXPECT_NEAR(design.achieved.value(), 500.0, 10.0);
  EXPECT_GT(design.r_poly.value(), 0.0);
}

TEST(DelayLine, EightSegmentsReachTheSameDelayWithLowerR) {
  // More segments need less POLY2 resistance per stage for the same
  // total delay (this is how the paper retunes between Q levels).
  const auto four = calibrate_delay_line(4, Picoseconds(500.0));
  const auto eight = calibrate_delay_line(8, Picoseconds(500.0));
  EXPECT_LT(eight.r_poly.value(), four.r_poly.value());
  EXPECT_NEAR(eight.achieved.value(), 500.0, 10.0);
}

TEST(DelayLine, ClkDelLineCalibrates) {
  // CLK_DEL needs 2δ + D_CWSP + D_MUX + T_SETUP_EQ = 1259 ps with 8
  // segments (paper: 8 segments for Q = 100 fC).
  const auto design = calibrate_delay_line(8, Picoseconds(1259.0));
  EXPECT_NEAR(design.achieved.value(), 1259.0, 20.0);
}

TEST(DelayLine, UnreachableTargetRejected) {
  EXPECT_THROW((void)(calibrate_delay_line(1, Picoseconds(50000.0))), Error);
}

TEST(DelayLine, InvalidArgumentsRejected) {
  Circuit c;
  SpiceTech tech;
  const int vdd = add_vdd(c, tech);
  EXPECT_THROW(add_delay_line(c, "dl", c.node("a"), c.node("b"), vdd, 0,
                              Kiloohms(10.0), tech),
               Error);
  EXPECT_THROW(add_delay_line(c, "dl", c.node("a"), c.node("b"), vdd, 4,
                              Kiloohms(0.0), tech),
               Error);
}

}  // namespace
}  // namespace cwsp::spice
