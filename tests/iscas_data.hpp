#pragma once
// The two classic public-domain ISCAS circuits small enough to embed
// verbatim, shared between the parser/protocol tests and the certifier
// cross-check tests: c17 (ISCAS85, six NAND2s) and s27 (ISCAS89, 10
// gates + 3 DFFs).

namespace cwsp::testdata {

inline constexpr const char* kC17 = R"(
# c17 — ISCAS85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

inline constexpr const char* kS27 = R"(
# s27 — ISCAS89
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

}  // namespace cwsp::testdata
