// Differential tests of the fault-parallel strike-lane kernel.
//
// Three layers of byte-identity, each against an independently-tested
// reference:
//
//   * WideLogicSim at every supported lane width (64/256/512 — portable
//     or vectorized, whatever this build dispatches) against the scalar
//     LogicSim lane by lane, and its flip sweeps against LogicSim64
//     subword by subword, over fuzzed netlists and the embedded ISCAS
//     circuits;
//   * the campaign engine's lane path against the scalar ProtectionSim
//     worker pool: identical plans produce byte-identical JSON reports
//     at every lane width and jobs value, including edge batches
//     (smaller than the lane count, strikes on PI/FF-Q/PO nets,
//     zero-width pulses, strike cycles beyond the run);
//   * certify at every lane width against its 64-wide reports.

#include "sim/strike_lanes.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/certify.hpp"
#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "common/metrics.hpp"
#include "iscas_data.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist_fuzz.hpp"
#include "sim/compiled_kernel.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp {
namespace {

std::vector<bool> random_bits(std::size_t n, Rng& rng) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.next_bool();
  return bits;
}

// ---------------------------------------------------------- WideLogicSim

class WideLogicSimDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(WideLogicSimDifferential, EveryWidthTracksScalarLogicSimPerLane) {
  const auto netlist = testing::make_random_netlist(lib_, GetParam());
  const auto context = sim::CompiledKernelContext::build(netlist);
  const std::size_t npi = netlist.primary_inputs().size();

  for (std::size_t width : sim::WideLogicSim::supported_lane_widths()) {
    sim::WideLogicSim wide(context->view, width);
    ASSERT_EQ(wide.lanes(), width);
    Rng rng(GetParam() ^ width);

    // Every lane is an independent clocked simulation; three steps catch
    // FF-state evolution bugs, not just combinational ones.
    std::vector<sim::LogicSim> scalars;
    for (std::size_t l = 0; l < width; ++l) scalars.emplace_back(netlist);

    for (int step = 0; step < 3; ++step) {
      for (std::size_t l = 0; l < width; ++l) {
        const auto inputs = random_bits(npi, rng);
        for (std::size_t i = 0; i < npi; ++i) {
          wide.set_input_lane(i, l, inputs[i]);
        }
        scalars[l].set_inputs(inputs);
      }
      wide.evaluate();
      for (std::size_t l = 0; l < width; ++l) scalars[l].evaluate();

      for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
        for (std::size_t l = 0; l < width; ++l) {
          ASSERT_EQ(wide.value(NetId{n}, l), scalars[l].value(NetId{n}))
              << "seed " << GetParam() << " width " << width << " step "
              << step << " net " << n << " lane " << l;
        }
      }

      wide.clock();
      for (std::size_t l = 0; l < width; ++l) scalars[l].clock();
    }
  }
}

TEST_P(WideLogicSimDifferential, FlipSweepsMatchLogicSim64PerSubword) {
  const auto netlist = testing::make_random_netlist(lib_, GetParam());
  const auto context = sim::CompiledKernelContext::build(netlist);
  const std::size_t npi = netlist.primary_inputs().size();
  const std::size_t nff = netlist.num_flip_flops();

  for (std::size_t width : sim::WideLogicSim::supported_lane_widths()) {
    const std::size_t words = width / 64;
    sim::WideLogicSim wide(context->view, width);
    sim::LogicSim64 narrow(context->view);
    Rng rng(GetParam() ^ (width << 8));

    // One wide batch == `words` independent 64-lane batches.
    std::vector<std::vector<bool>> lane_inputs(width);
    std::vector<std::vector<bool>> lane_state(width);
    for (std::size_t l = 0; l < width; ++l) {
      lane_inputs[l] = random_bits(npi, rng);
      lane_state[l] = random_bits(nff, rng);
      for (std::size_t i = 0; i < npi; ++i) {
        wide.set_input_lane(i, l, lane_inputs[l][i]);
      }
      for (std::size_t f = 0; f < nff; ++f) {
        wide.set_ff_lane(f, l, lane_state[l][f]);
      }
    }
    wide.evaluate();

    for (std::size_t w = 0; w < words; ++w) {
      for (std::size_t l = 0; l < 64; ++l) {
        const std::size_t src = w * 64 + l;
        for (std::size_t i = 0; i < npi; ++i) {
          narrow.set_input_lane(i, l, lane_inputs[src][i]);
        }
        for (std::size_t f = 0; f < nff; ++f) {
          narrow.set_ff_lane(f, l, lane_state[src][f]);
        }
      }
      narrow.evaluate();

      for (std::size_t site = 0; site < netlist.num_nets(); ++site) {
        wide.evaluate_with_flip(NetId{site});
        narrow.evaluate_with_flip(NetId{site});
        for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
          ASSERT_EQ(wide.flip_diff_word(NetId{n}, w),
                    narrow.flip_diff(NetId{n}))
              << "seed " << GetParam() << " width " << width << " subword "
              << w << " site " << site << " net " << n;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, WideLogicSimDifferential,
                         ::testing::Values(11u, 23u, 47u));

TEST(WideLogicSimIscas, EveryWidthTracksScalarOnEmbeddedCircuits) {
  const CellLibrary lib = make_default_library();
  for (const char* bench : {testdata::kC17, testdata::kS27}) {
    const auto netlist = parse_bench_string(bench, lib);
    const auto context = sim::CompiledKernelContext::build(netlist);
    const std::size_t npi = netlist.primary_inputs().size();

    for (std::size_t width : sim::WideLogicSim::supported_lane_widths()) {
      sim::WideLogicSim wide(context->view, width);
      Rng rng(width * 31u + netlist.num_nets());
      std::vector<sim::LogicSim> scalars;
      for (std::size_t l = 0; l < width; ++l) scalars.emplace_back(netlist);

      for (int step = 0; step < 2; ++step) {
        for (std::size_t l = 0; l < width; ++l) {
          const auto inputs = random_bits(npi, rng);
          for (std::size_t i = 0; i < npi; ++i) {
            wide.set_input_lane(i, l, inputs[i]);
          }
          scalars[l].set_inputs(inputs);
        }
        wide.evaluate();
        for (std::size_t l = 0; l < width; ++l) scalars[l].evaluate();
        for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
          for (std::size_t l = 0; l < width; ++l) {
            ASSERT_EQ(wide.value(NetId{n}, l), scalars[l].value(NetId{n}))
                << netlist.name() << " width " << width << " net " << n
                << " lane " << l;
          }
        }
        wide.clock();
        for (std::size_t l = 0; l < width; ++l) scalars[l].clock();
      }
    }
  }
}

// -------------------------------------------------- campaign lane path

class LaneCampaignTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(testdata::kS27, lib_);
  core::ProtectionParams params_ = core::ProtectionParams::q100();
  Picoseconds period_{2000.0};

  [[nodiscard]] campaign::CampaignEngine engine() const {
    return campaign::CampaignEngine(netlist_, params_, period_);
  }

  [[nodiscard]] std::string report_for(
      const set::StrikePlan& plan, const campaign::EngineOptions& opts) const {
    const auto result = engine().run(plan, opts);
    return campaign::format_campaign_json(result, plan, netlist_, opts,
                                          period_);
  }

  void expect_width_and_jobs_invariant(const set::StrikePlan& plan,
                                       campaign::EngineOptions base,
                                       const std::string& label) const {
    base.use_lane_kernel = false;
    base.jobs = 1;
    const std::string scalar = report_for(plan, base);
    for (std::size_t width : sim::WideLogicSim::supported_lane_widths()) {
      for (std::size_t jobs : {std::size_t{1}, std::size_t{3}}) {
        campaign::EngineOptions lane = base;
        lane.use_lane_kernel = true;
        lane.lane_width = width;
        lane.jobs = jobs;
        EXPECT_EQ(scalar, report_for(plan, lane))
            << label << ": lane width " << width << " jobs " << jobs;
      }
    }
  }
};

TEST_F(LaneCampaignTest, AdversarialPlanReportsAreByteIdentical) {
  set::StrikePlanOptions po;
  po.functional_strikes = 24;
  po.protection_path_strikes = 6;
  po.clock_edge_strikes = 6;
  po.out_of_envelope_strikes = 6;
  po.cycles_per_run = 8;
  po.clock_period = period_;
  po.out_of_envelope_width = params_.delta + Picoseconds(400.0);
  const auto plan = set::build_strike_plan(netlist_, po, 7);

  campaign::EngineOptions opts;
  opts.seed = 99;
  opts.cycles_per_run = 8;
  expect_width_and_jobs_invariant(plan, opts, "adversarial");
}

TEST_F(LaneCampaignTest, EveryNetEveryWidthClassMatchesScalar) {
  // Manual plan sweeping every net of s27 — primary inputs, FF Q nets,
  // gate outputs and PO-driving nets included — with a zero-width pulse,
  // an in-envelope pulse, and an out-of-envelope pulse per net, plus
  // strike cycles at and beyond the run length.
  const std::size_t cycles = 6;
  const double widths[] = {0.0, params_.delta.value() * 0.5,
                           params_.delta.value() + 400.0};
  set::StrikePlan plan;
  std::size_t index = 0;
  for (std::size_t n = 0; n < netlist_.num_nets(); ++n) {
    for (std::size_t v = 0; v < std::size(widths); ++v) {
      set::PlannedStrike p;
      p.index = index;
      p.klass = set::StrikeClass::kFunctional;
      // Lands some strikes on the final cycle and some past the run.
      p.cycle = index % (cycles + 2);
      p.strike.node = NetId{n};
      p.strike.start = Picoseconds(120.0 * static_cast<double>(v + 1));
      p.strike.width = Picoseconds(widths[v]);
      plan.strikes.push_back(p);
      ++index;
    }
  }

  campaign::EngineOptions opts;
  opts.seed = 2026;
  opts.cycles_per_run = cycles;
  expect_width_and_jobs_invariant(plan, opts, "every-net");
}

TEST_F(LaneCampaignTest, SpuriousEqWindowStrikesMatchScalar) {
  // Pulses on FF Q nets positioned exactly across the CLK_DEL sampling
  // moment exercise the spurious-EQ squash path analytically resolved by
  // the lane engine.
  const double t_sample = params_.clk_del_delay().value();
  set::StrikePlan plan;
  std::size_t index = 0;
  for (std::size_t f = 0; f < netlist_.num_flip_flops(); ++f) {
    const NetId q = netlist_.flip_flop(FlipFlopId{f}).q;
    for (double width : {params_.delta.value() * 0.5,
                         params_.delta.value() + 300.0}) {
      set::PlannedStrike p;
      p.index = index;
      p.klass = set::StrikeClass::kFunctional;
      p.cycle = index % 5;
      p.strike.node = q;
      p.strike.start = Picoseconds(t_sample - width * 0.5);
      p.strike.width = Picoseconds(width);
      plan.strikes.push_back(p);
      ++index;
    }
  }

  campaign::EngineOptions opts;
  opts.seed = 5;
  opts.cycles_per_run = 5;
  expect_width_and_jobs_invariant(plan, opts, "spurious-eq");
}

TEST_F(LaneCampaignTest, BatchSmallerThanLaneCountMatchesScalar) {
  set::StrikePlanOptions po;
  po.functional_strikes = 3;  // far below even the 64-lane width
  po.cycles_per_run = 6;
  po.clock_period = period_;
  const auto plan = set::build_strike_plan(netlist_, po, 13);

  campaign::EngineOptions opts;
  opts.seed = 17;
  opts.cycles_per_run = 6;
  expect_width_and_jobs_invariant(plan, opts, "small-batch");
}

TEST_F(LaneCampaignTest, LaneTelemetryCountsBatchesAndSlots) {
  set::StrikePlanOptions po;
  po.functional_strikes = 10;
  po.cycles_per_run = 4;
  po.clock_period = period_;
  const auto plan = set::build_strike_plan(netlist_, po, 3);

  auto& registry = metrics::Registry::global();
  const auto batches_before =
      registry.counter("campaign.lane_batches").value();
  const auto filled_before =
      registry.counter("campaign.lane_slots_filled").value();

  campaign::EngineOptions opts;
  opts.seed = 4;
  opts.cycles_per_run = 4;
  opts.lane_width = 64;
  const auto result = engine().run(plan, opts);
  EXPECT_EQ(result.report.runs, plan.size());

  EXPECT_EQ(registry.counter("campaign.lane_batches").value(),
            batches_before + 1);
  EXPECT_EQ(registry.counter("campaign.lane_slots_filled").value(),
            filled_before + static_cast<std::int64_t>(plan.size()));
}

// ------------------------------------------------ certify lane widths

TEST(CertifyLaneWidths, ReportsAreWidthInvariant) {
  const CellLibrary lib = make_default_library();
  const auto netlist = parse_bench_string(testdata::kS27, lib);
  const auto params = core::ProtectionParams::q100();
  const Picoseconds period{2000.0};
  const auto context = sim::CompiledKernelContext::build(netlist);

  analysis::CertifyOptions base;
  base.seed = 3;
  base.minimize_witnesses = false;
  base.lane_width = 64;
  const auto reference =
      analysis::certify_design(netlist, params, period, base, context);
  const std::string ref_text = analysis::format_certify_text(reference, netlist);
  const std::string ref_json = analysis::format_certify_json(reference, netlist);

  for (std::size_t width : {std::size_t{256}, std::size_t{512}, std::size_t{0}}) {
    analysis::CertifyOptions opts = base;
    opts.lane_width = width;
    const auto got =
        analysis::certify_design(netlist, params, period, opts, context);
    EXPECT_EQ(ref_text, analysis::format_certify_text(got, netlist))
        << "lane width " << width;
    EXPECT_EQ(ref_json, analysis::format_certify_json(got, netlist))
        << "lane width " << width;
  }
}

}  // namespace
}  // namespace cwsp
