#include "netlist/blif_parser.hpp"

#include <gtest/gtest.h>

namespace cwsp {
namespace {

class BlifParserTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(BlifParserTest, ParsesGatesAndLatches) {
  const auto n = parse_blif_string(R"(
.model counter_bit
.inputs en
.outputs q
.gate XOR2 a=en b=q O=d
.latch d q re clk 0
.end
)",
                                   lib_);
  EXPECT_EQ(n.name(), "counter_bit");
  EXPECT_EQ(n.num_gates(), 1u);
  EXPECT_EQ(n.num_flip_flops(), 1u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
}

TEST_F(BlifParserTest, LineContinuation) {
  const auto n = parse_blif_string(".model c\n.inputs a \\\nb\n.outputs y\n"
                                   ".gate NAND2 a=a b=b O=y\n.end\n",
                                   lib_);
  EXPECT_EQ(n.primary_inputs().size(), 2u);
}

TEST_F(BlifParserTest, NamesConstants) {
  const auto n = parse_blif_string(R"(
.model consts
.inputs a
.outputs y
.names one
1
.gate AND2 a=a b=one O=y
.end
)",
                                   lib_);
  const Net& one = n.net(*n.find_net("one"));
  EXPECT_EQ(one.driver_kind, DriverKind::kConstant);
  EXPECT_TRUE(one.constant_value);
}

TEST_F(BlifParserTest, NamesConstantZero) {
  const auto n = parse_blif_string(R"(
.model consts0
.inputs a
.outputs y
.names zero
.gate OR2 a=a b=zero O=y
.end
)",
                                   lib_);
  EXPECT_FALSE(n.net(*n.find_net("zero")).constant_value);
}

TEST_F(BlifParserTest, NamesBufferAndInverter) {
  const auto n = parse_blif_string(R"(
.model bufinv
.inputs a
.outputs y z
.names a y
1 1
.names a z
0 1
.end
)",
                                   lib_);
  EXPECT_EQ(n.num_gates(), 2u);
  const Net& y = n.net(*n.find_net("y"));
  const Net& z = n.net(*n.find_net("z"));
  EXPECT_EQ(n.cell_of(GateId{y.driver_index}).kind(), CellKind::kBuf);
  EXPECT_EQ(n.cell_of(GateId{z.driver_index}).kind(), CellKind::kInv);
}

TEST_F(BlifParserTest, UnknownCellRejected) {
  EXPECT_THROW(parse_blif_string(R"(
.model bad
.inputs a
.outputs y
.gate MYSTERY a=a O=y
.end
)",
                                 lib_),
               Error);
}

TEST_F(BlifParserTest, PinCountMismatchRejected) {
  EXPECT_THROW(parse_blif_string(R"(
.model bad
.inputs a
.outputs y
.gate NAND2 a=a O=y
.end
)",
                                 lib_),
               Error);
}

TEST_F(BlifParserTest, WideNamesCoverRejected) {
  EXPECT_THROW(parse_blif_string(R"(
.model bad
.inputs a b
.outputs y
.names a b y
11 1
.end
)",
                                 lib_),
               Error);
}

TEST_F(BlifParserTest, UnsupportedDirectiveRejected) {
  EXPECT_THROW(
      parse_blif_string(".model x\n.subckt foo a=a\n.end\n", lib_), Error);
}

TEST_F(BlifParserTest, CommentsIgnored) {
  const auto n = parse_blif_string(R"(
# full-line comment
.model c
.inputs a  # trailing comment
.outputs y
.gate INV a=a O=y
.end
)",
                                   lib_);
  EXPECT_EQ(n.num_gates(), 1u);
}

}  // namespace
}  // namespace cwsp
