#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include "cwsp/elaborate_system.hpp"
#include "cwsp/eqglb_tree.hpp"
#include "cwsp/protection_params.hpp"
#include "lint/report.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist_fuzz.hpp"

namespace cwsp::lint {
namespace {

class LintTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();

  LintReport lint_text(const std::string& text,
                       const LintOptions& options = {}) {
    return lint_bench_string(text, lib_, "bench", options);
  }
};

// ---------------------------------------------------------------- structure

TEST_F(LintTest, CleanDesignHasNoDiagnostics) {
  const auto report = lint_text(R"(
INPUT(a)
INPUT(b)
OUTPUT(q)
t1 = NAND(a, b)
t2 = XOR(t1, q)
q = DFF(t2)
)");
  EXPECT_TRUE(report.clean()) << format_text(report);
  EXPECT_FALSE(report.fails_at(Severity::kInfo));
}

TEST_F(LintTest, RandomValidNetlistsAreClean) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto netlist = testing::make_random_netlist(lib_, seed);
    const auto report = run_lint(netlist);
    EXPECT_EQ(report.errors(), 0u)
        << "seed " << seed << ":\n" << format_text(report);
    EXPECT_FALSE(report.has_rule("combinational-loop")) << "seed " << seed;
  }
}

TEST_F(LintTest, UndrivenNetFires) {
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(y)
y = AND(a, phantom)
)");
  ASSERT_TRUE(report.has_rule("undriven-net")) << format_text(report);
  const auto diags = report.by_rule("undriven-net");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  ASSERT_EQ(diags[0].net_names.size(), 1u);
  EXPECT_EQ(diags[0].net_names[0], "phantom");
}

TEST_F(LintTest, DanglingOutputFires) {
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(y)
OUTPUT(nowhere)
y = INV(a)
)");
  ASSERT_TRUE(report.has_rule("dangling-output")) << format_text(report);
  EXPECT_EQ(report.by_rule("dangling-output")[0].severity, Severity::kError);
}

TEST_F(LintTest, MultiplyDrivenNetFiresFromSource) {
  // The in-memory netlist keeps only the first driver, so redefinitions
  // surface through the lenient parse's issue list.
  const auto report = lint_text(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
y = NOR(a, b)
)");
  ASSERT_TRUE(report.has_rule("multiply-driven-net")) << format_text(report);
  const auto diags = report.by_rule("multiply-driven-net");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("line"), std::string::npos);
}

TEST_F(LintTest, FloatingGateOutputFires) {
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(y)
y = INV(a)
orphan = BUF(a)
)");
  ASSERT_TRUE(report.has_rule("floating-gate-output")) << format_text(report);
  EXPECT_EQ(report.by_rule("floating-gate-output")[0].severity,
            Severity::kWarning);
}

TEST_F(LintTest, UnusedInputFires) {
  const auto report = lint_text(R"(
INPUT(a)
INPUT(spare)
OUTPUT(y)
y = INV(a)
)");
  ASSERT_TRUE(report.has_rule("unused-input")) << format_text(report);
  EXPECT_EQ(report.by_rule("unused-input")[0].severity, Severity::kInfo);
  EXPECT_EQ(report.errors(), 0u);
}

TEST_F(LintTest, UnreachableGateFires) {
  // island1/island2 feed each other's cone but never reach y.
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(y)
y = INV(a)
island1 = INV(a)
island2 = INV(island1)
)");
  ASSERT_TRUE(report.has_rule("unreachable-gate")) << format_text(report);
  // island1 has fanout (island2) but cannot reach an endpoint.
  const auto diags = report.by_rule("unreachable-gate");
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST_F(LintTest, CombinationalLoopFires) {
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(y)
u = AND(a, v)
v = INV(u)
y = BUF(u)
)");
  ASSERT_TRUE(report.has_rule("combinational-loop")) << format_text(report);
  const auto diags = report.by_rule("combinational-loop");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("->"), std::string::npos);
}

TEST_F(LintTest, LoopThroughFlipFlopIsNotCombinational) {
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(q)
t = XOR(a, q)
q = DFF(t)
)");
  EXPECT_FALSE(report.has_rule("combinational-loop")) << format_text(report);
}

TEST_F(LintTest, ParseErrorPseudoRule) {
  const auto report = lint_text("y = FROB(a, b)\n");
  ASSERT_TRUE(report.has_rule("parse-error")) << format_text(report);
  EXPECT_TRUE(report.fails_at(Severity::kError));
}

TEST_F(LintTest, RequireCleanStructureThrowsWithRuleIds) {
  Netlist nl(lib_, "broken");
  const NetId a = nl.add_primary_input("a");
  const NetId phantom = nl.add_net("phantom");
  const GateId g =
      nl.add_gate(lib_.cell_for(CellKind::kAnd2), {a, phantom}, "y");
  nl.mark_primary_output(nl.gate(g).output);
  try {
    require_clean_structure(nl);
    FAIL() << "expected cwsp::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("undriven-net"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------------ timing

TEST_F(LintTest, DeltaUnprotectableOnShallowDesign) {
  LintOptions options;
  options.params = core::ProtectionParams::q100();
  const auto report = lint_text(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
)",
                                options);
  ASSERT_TRUE(report.has_rule("delta-unprotectable")) << format_text(report);
  EXPECT_EQ(report.by_rule("delta-unprotectable")[0].severity,
            Severity::kError);
  EXPECT_FALSE(report.has_rule("delta-envelope"));
}

TEST_F(LintTest, DeltaEnvelopeWarnsOnReducedEnvelope) {
  // ~40 INV deep: Dmax clears Delta so some glitch is tolerated, but the
  // envelope stays below the designed 500 ps delta -> warning, not error.
  std::string text = "INPUT(a)\nOUTPUT(y)\n";
  std::string prev = "a";
  for (int i = 0; i < 40; ++i) {
    const std::string cur = "n" + std::to_string(i);
    text += cur + " = INV(" + prev + ")\n";
    prev = cur;
  }
  text += "y = BUF(" + prev + ")\n";
  LintOptions options;
  options.params = core::ProtectionParams::q100();
  const auto report = lint_text(text, options);
  ASSERT_TRUE(report.has_rule("delta-envelope")) << format_text(report);
  EXPECT_EQ(report.by_rule("delta-envelope")[0].severity, Severity::kWarning);
  EXPECT_FALSE(report.has_rule("delta-unprotectable"));
  EXPECT_EQ(report.errors(), 0u);
}

TEST_F(LintTest, PeriodRulesFireWithExplicitShortPeriod) {
  std::string text = "INPUT(a)\nOUTPUT(y)\n";
  std::string prev = "a";
  for (int i = 0; i < 105; ++i) {
    const std::string cur = "n" + std::to_string(i);
    text += cur + " = INV(" + prev + ")\n";
    prev = cur;
  }
  text += "y = BUF(" + prev + ")\n";
  LintOptions options;
  options.params = core::ProtectionParams::q100();

  // Without an explicit period the design's own hardened period is used,
  // which satisfies Eqs. 3 and 6 by construction.
  EXPECT_EQ(lint_text(text, options).errors(), 0u);

  options.clock_period = Picoseconds(800.0);
  const auto report = lint_text(text, options);
  ASSERT_TRUE(report.has_rule("period-too-short")) << format_text(report);
  ASSERT_TRUE(report.has_rule("clk-del-period")) << format_text(report);
  EXPECT_TRUE(report.fails_at(Severity::kError));
}

TEST_F(LintTest, TimingRulesSkippedWhenStructureBroken) {
  LintOptions options;
  options.params = core::ProtectionParams::q100();
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(y)
u = AND(a, v)
v = INV(u)
y = BUF(u)
)",
                                options);
  EXPECT_TRUE(report.has_rule("combinational-loop"));
  EXPECT_FALSE(report.has_rule("delta-unprotectable"));
  EXPECT_FALSE(report.has_rule("delta-envelope"));
}

// --------------------------------------------------------------- hardening

TEST_F(LintTest, ElaboratedHardenedSystemIsClean) {
  const auto source = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q1)
OUTPUT(q2)
t1 = NAND(a, b)
t2 = XOR(t1, q1)
q1 = DFF(t1)
q2 = DFF(t2)
)",
                                         lib_);
  const auto system = core::elaborate_hardened_system(source);
  LintOptions options;
  options.hardened_structure = true;
  const auto report = run_lint(system.netlist, options);
  EXPECT_EQ(report.errors(), 0u) << format_text(report);
}

TEST_F(LintTest, HardeningRepairMuxFires) {
  // A "hardened" netlist whose system FF samples plain logic: no MUX.
  Netlist nl(lib_, "fake");
  const NetId a = nl.add_primary_input("a");
  const GateId buf = nl.add_gate(lib_.cell_for(CellKind::kBuf), {a}, "d");
  nl.add_flip_flop(nl.gate(buf).output, "state");
  nl.mark_primary_output(*nl.find_net("state"));

  LintOptions options;
  options.hardened_structure = true;
  const auto report = run_lint(nl, options);
  ASSERT_TRUE(report.has_rule("hardening-repair-mux")) << format_text(report);
  const auto diags = report.by_rule("hardening-repair-mux");
  ASSERT_EQ(diags[0].ff_names.size(), 1u);
  EXPECT_EQ(diags[0].ff_names[0], "state");
}

TEST_F(LintTest, HardeningShadowFfFires) {
  // The repair MUX exists but its recompute leg is gate-driven, not a
  // CWSP shadow latch.
  Netlist nl(lib_, "fake");
  const NetId a = nl.add_primary_input("a");
  const NetId sel = nl.add_primary_input("sel");
  const GateId fakecw = nl.add_gate(lib_.cell_for(CellKind::kInv), {a}, "fk");
  const GateId mux = nl.add_gate(lib_.cell_for(CellKind::kMux2),
                                 {a, nl.gate(fakecw).output, sel}, "d");
  nl.add_flip_flop(nl.gate(mux).output, "state");
  nl.mark_primary_output(*nl.find_net("state"));

  LintOptions options;
  options.hardened_structure = true;
  const auto report = run_lint(nl, options);
  ASSERT_TRUE(report.has_rule("hardening-shadow-ff")) << format_text(report);
  EXPECT_FALSE(report.has_rule("hardening-repair-mux"));
}

TEST_F(LintTest, HardeningEqCheckerFires) {
  Netlist nl(lib_, "fake");
  const NetId a = nl.add_primary_input("a");
  const NetId sel = nl.add_primary_input("sel");
  // Proper shadow latch feeding the MUX leg, but no XNOR compare on Q.
  const GateId tap = nl.add_gate(lib_.cell_for(CellKind::kBuf), {a}, "tap");
  nl.add_flip_flop(nl.gate(tap).output, "cw0");
  const GateId mux =
      nl.add_gate(lib_.cell_for(CellKind::kMux2),
                  {a, *nl.find_net("cw0"), sel}, "d");
  nl.add_flip_flop(nl.gate(mux).output, "state");
  nl.mark_primary_output(*nl.find_net("state"));

  LintOptions options;
  options.hardened_structure = true;
  const auto report = run_lint(nl, options);
  EXPECT_FALSE(report.has_rule("hardening-repair-mux"))
      << format_text(report);
  ASSERT_TRUE(report.has_rule("hardening-eq-checker")) << format_text(report);
  EXPECT_EQ(report.by_rule("hardening-eq-checker")[0].ff_names[0], "state");
}

TEST_F(LintTest, HardeningSuppressionFfFires) {
  Netlist nl(lib_, "fake");
  const NetId a = nl.add_primary_input("a");
  nl.add_flip_flop(a, "state");
  nl.mark_primary_output(*nl.find_net("state"));
  LintOptions options;
  options.hardened_structure = true;
  const auto report = run_lint(nl, options);
  ASSERT_TRUE(report.has_rule("hardening-suppression-ff"))
      << format_text(report);
  EXPECT_NE(report.by_rule("hardening-suppression-ff")[0].message.find(
                "eqglb"),
            std::string::npos);
}

TEST_F(LintTest, EqglbTreeBoundsFires) {
  const auto nl = parse_bench_string(R"(
INPUT(a)
OUTPUT(q1)
OUTPUT(q2)
t = INV(a)
q1 = DFF(t)
q2 = DFF(a)
)",
                                     lib_);
  LintOptions options;
  options.tree = core::build_eqglb_tree(5);  // netlist protects 2 FFs
  const auto report = run_lint(nl, options);
  ASSERT_TRUE(report.has_rule("eqglb-tree-bounds")) << format_text(report);
  EXPECT_TRUE(report.fails_at(Severity::kError));
}

TEST_F(LintTest, EqglbTreeSingleLevelOverflowFires) {
  Netlist nl(lib_, "many_ffs");
  const NetId a = nl.add_primary_input("a");
  for (int i = 0; i < 40; ++i) {
    nl.add_flip_flop(a, "q" + std::to_string(i));
    nl.mark_primary_output(*nl.find_net("q" + std::to_string(i)));
  }
  core::EqglbTree tree = core::build_eqglb_tree(40);
  tree.levels = 1;  // claim a flat NOR over 40 inputs
  LintOptions options;
  options.tree = tree;
  const auto report = run_lint(nl, options);
  ASSERT_TRUE(report.has_rule("eqglb-tree-bounds")) << format_text(report);
  EXPECT_NE(report.by_rule("eqglb-tree-bounds")[0].message.find("multilevel"),
            std::string::npos);
}

TEST_F(LintTest, MatchingTreePassesBounds) {
  const auto nl = parse_bench_string(R"(
INPUT(a)
OUTPUT(q1)
OUTPUT(q2)
t = INV(a)
q1 = DFF(t)
q2 = DFF(a)
)",
                                     lib_);
  LintOptions options;
  options.tree = core::build_eqglb_tree(2);
  const auto report = run_lint(nl, options);
  EXPECT_FALSE(report.has_rule("eqglb-tree-bounds")) << format_text(report);
}

// --------------------------------------------------------------- reporting

TEST_F(LintTest, TextReportListsRuleIdsAndSummary) {
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(y)
y = AND(a, phantom)
)");
  const std::string text = format_text(report);
  EXPECT_NE(text.find("[undriven-net]"), std::string::npos) << text;
  EXPECT_NE(text.find("error"), std::string::npos) << text;
}

TEST_F(LintTest, JsonReportIsWellFormed) {
  const auto report = lint_text(R"(
INPUT(a)
OUTPUT(y)
y = AND(a, phantom)
)");
  const std::string json = format_json(report);
  EXPECT_NE(json.find("\"rule\": \"undriven-net\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nets\": [\"phantom\"]"), std::string::npos) << json;
}

TEST_F(LintTest, FallbackArcOnCriticalPathWarns) {
  // The critical path of this chain runs through NAND2 gates; when
  // characterization degraded NAND2 to its calibrated model, the timing
  // verdict rests on a prediction and lint must say so.
  const std::string text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
t1 = NAND(a, b)
t2 = NAND(t1, b)
y = NAND(t2, a)
)";
  LintOptions options;
  options.fallback_cells = {"NAND2"};
  const auto report = lint_text(text, options);
  ASSERT_TRUE(report.has_rule("timing-fallback-arc")) << format_text(report);
  const auto diags = report.by_rule("timing-fallback-arc");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("calibrated-fallback"), std::string::npos);
  EXPECT_FALSE(diags[0].gate_names.empty());
}

TEST_F(LintTest, FallbackArcOffCriticalPathStaysQuiet) {
  // INV was degraded but the critical path is pure NAND2: the timing
  // verdict does not rest on a fallback arc, so no warning.
  const std::string text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
t1 = NAND(a, b)
t2 = NAND(t1, b)
y = NAND(t2, a)
z = INV(a)
)";
  LintOptions options;
  options.fallback_cells = {"INV"};
  const auto report = lint_text(text, options);
  EXPECT_FALSE(report.has_rule("timing-fallback-arc")) << format_text(report);
}

TEST_F(LintTest, JsonEscapesSpecialCharacters) {
  LintReport report;
  report.design = "d";
  Diagnostic d;
  d.rule_id = "parse-error";
  d.severity = Severity::kError;
  d.message = "quote \" backslash \\ newline \n tab \t";
  report.add(std::move(d));
  const std::string json = format_json(report);
  EXPECT_NE(json.find("\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\\"), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  // The raw control characters must not survive into the JSON string.
  EXPECT_EQ(json.find("newline \n"), std::string::npos) << json;
  EXPECT_EQ(json.find('\t'), std::string::npos) << json;
}

TEST_F(LintTest, DefaultRegistryHasUniqueDocumentedRules) {
  const RuleRegistry& registry = default_registry();
  EXPECT_GE(registry.rules().size(), 15u);
  for (const Rule& rule : registry.rules()) {
    EXPECT_FALSE(rule.description.empty()) << rule.id;
    EXPECT_EQ(registry.find(rule.id), &rule);
  }
  EXPECT_EQ(registry.find("no-such-rule"), nullptr);
}

}  // namespace
}  // namespace cwsp::lint
