// The continuous tuning knob (ProtectionParams::for_charge) must pass
// through both published design points exactly and behave monotonically
// between/beyond them.

#include <gtest/gtest.h>

#include "cwsp/protection_params.hpp"
#include "cwsp/timing.hpp"

namespace cwsp::core {
namespace {

using namespace cwsp::literals;

TEST(ProtectionTuning, ReproducesQ100DesignPoint) {
  const auto p = ProtectionParams::for_charge(100.0_fC, 500.0_ps);
  const auto ref = ProtectionParams::q100();
  EXPECT_DOUBLE_EQ(p.cwsp_pmos_mult, ref.cwsp_pmos_mult);
  EXPECT_DOUBLE_EQ(p.cwsp_nmos_mult, ref.cwsp_nmos_mult);
  EXPECT_EQ(p.segments_clk_del, ref.segments_clk_del);
  EXPECT_DOUBLE_EQ(p.d_cwsp.value(), ref.d_cwsp.value());
  EXPECT_NEAR(p.per_ff_area.value(), ref.per_ff_area.value(), 1e-12);
}

TEST(ProtectionTuning, ReproducesQ150DesignPoint) {
  const auto p = ProtectionParams::for_charge(150.0_fC, 600.0_ps);
  const auto ref = ProtectionParams::q150();
  EXPECT_DOUBLE_EQ(p.cwsp_pmos_mult, ref.cwsp_pmos_mult);
  EXPECT_DOUBLE_EQ(p.cwsp_nmos_mult, ref.cwsp_nmos_mult);
  EXPECT_EQ(p.segments_clk_del, ref.segments_clk_del);
  EXPECT_NEAR(p.per_ff_area.value(), ref.per_ff_area.value(), 1e-12);
}

TEST(ProtectionTuning, AreaMonotoneInCharge) {
  double prev = 0.0;
  for (double q = 50.0; q <= 250.0; q += 10.0) {
    const auto p =
        ProtectionParams::for_charge(Femtocoulombs(q), 400.0_ps);
    EXPECT_GT(p.per_ff_area.value(), prev) << "Q=" << q;
    prev = p.per_ff_area.value();
  }
}

TEST(ProtectionTuning, DeltaDecomposition) {
  // Δ varies only through D_CWSP; at Q=125 fC it sits halfway between
  // 415 and 405 ps.
  const auto p = ProtectionParams::for_charge(125.0_fC, 550.0_ps);
  EXPECT_NEAR(p.protection_path_delta().value(), 410.0, 1e-9);
}

TEST(ProtectionTuning, SegmentsNeverBelowDeltaLine) {
  for (double q = 50.0; q <= 250.0; q += 25.0) {
    const auto p =
        ProtectionParams::for_charge(Femtocoulombs(q), 300.0_ps);
    EXPECT_GE(p.segments_clk_del, p.segments_delta) << "Q=" << q;
  }
}

TEST(ProtectionTuning, OutOfRangeRejected) {
  EXPECT_THROW((void)(ProtectionParams::for_charge(20.0_fC, 100.0_ps)), Error);
  EXPECT_THROW((void)(ProtectionParams::for_charge(400.0_fC, 800.0_ps)), Error);
}

}  // namespace
}  // namespace cwsp::core
