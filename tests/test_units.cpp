#include "common/units.hpp"

#include <gtest/gtest.h>

namespace cwsp {
namespace {

using namespace cwsp::literals;

TEST(Units, ArithmeticOnLikeQuantities) {
  const Picoseconds a{100.0};
  const Picoseconds b{50.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_DOUBLE_EQ((-b).value(), -50.0);
}

TEST(Units, CompoundAssignment) {
  Picoseconds t{10.0};
  t += Picoseconds{5.0};
  EXPECT_DOUBLE_EQ(t.value(), 15.0);
  t -= Picoseconds{3.0};
  EXPECT_DOUBLE_EQ(t.value(), 12.0);
  t *= 2.0;
  EXPECT_DOUBLE_EQ(t.value(), 24.0);
  t /= 4.0;
  EXPECT_DOUBLE_EQ(t.value(), 6.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Picoseconds{1.0}, Picoseconds{2.0});
  EXPECT_EQ(Picoseconds{3.0}, Picoseconds{3.0});
  EXPECT_GE(Femtocoulombs{150.0}, Femtocoulombs{100.0});
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((500_ps).value(), 500.0);
  EXPECT_DOUBLE_EQ((1.5_fC).value(), 1.5);
  EXPECT_DOUBLE_EQ((2_um2).value(), 2.0);
  EXPECT_DOUBLE_EQ((0.22_V).value(), 0.22);
  EXPECT_DOUBLE_EQ((1.2_fF).value(), 1.2);
  EXPECT_DOUBLE_EQ((4_kohm).value(), 4.0);
}

TEST(Units, RcDelayIsConsistent) {
  // 1 kΩ · 1 fF = 1 ps.
  EXPECT_DOUBLE_EQ(rc_delay(1_kohm, 1_fF).value(), 1.0);
  EXPECT_DOUBLE_EQ(rc_delay(4_kohm, 2.5_fF).value(), 10.0);
}

TEST(Units, ApproxEqual) {
  EXPECT_TRUE(approx_equal(Picoseconds{100.0}, Picoseconds{100.0}));
  EXPECT_TRUE(
      approx_equal(Picoseconds{100.0}, Picoseconds{100.0 + 1e-8}, 1e-9));
  EXPECT_FALSE(approx_equal(Picoseconds{100.0}, Picoseconds{101.0}, 1e-6));
  EXPECT_TRUE(approx_equal(Picoseconds{0.0}, Picoseconds{0.0}));
}

}  // namespace
}  // namespace cwsp
