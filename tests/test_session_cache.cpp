// Design sessions and the LRU session cache: warm per-design state
// (netlist + STA + compiled-kernel context) shared across service
// requests, bounded by entry count and resident bytes.

#include "service/session.hpp"

#include <gtest/gtest.h>

#include "cell/library.hpp"
#include "common/error.hpp"

namespace cwsp::service {
namespace {

constexpr char kDesignA[] =
    "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
    "t1 = NAND(a, b)\nt2 = XOR(t1, q)\nq = DFF(t2)\n";
constexpr char kDesignB[] =
    "INPUT(a)\nOUTPUT(q)\n"
    "t1 = NOT(a)\nq = DFF(t1)\n";
constexpr char kDesignC[] =
    "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
    "t1 = OR(a, b)\nq = DFF(t1)\n";

class SessionCacheTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(SessionCacheTest, DesignKeyCoversNameAndText) {
  EXPECT_EQ(design_key("d", kDesignA), design_key("d", kDesignA));
  EXPECT_NE(design_key("d", kDesignA), design_key("d", kDesignB));
  EXPECT_NE(design_key("d", kDesignA), design_key("e", kDesignA));
}

TEST_F(SessionCacheTest, DesignNameFromPathMatchesCliDerivation) {
  EXPECT_EQ(design_name_from_path("/a/b/c10.bench"), "c10");
  EXPECT_EQ(design_name_from_path("x.blif"), "x");
  EXPECT_EQ(design_name_from_path("noext"), "noext");
  EXPECT_EQ(design_name_from_path("dir.d/leaf.bench"), "leaf");
}

TEST_F(SessionCacheTest, BuildProducesWarmArtifacts) {
  const auto session = DesignSession::build("demo", kDesignA, lib_);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->name, "demo");
  ASSERT_NE(session->netlist, nullptr);
  EXPECT_EQ(session->netlist->num_flip_flops(), 1u);
  EXPECT_GT(session->sta.dmax.value(), 0.0);
  EXPECT_GT(session->period_q100.value(), 0.0);
  ASSERT_NE(session->kernel_context, nullptr);
  EXPECT_GT(session->approx_bytes, 0u);
}

TEST_F(SessionCacheTest, BuildRejectsMalformedDesigns) {
  EXPECT_THROW(
      (void)DesignSession::build("bad", "INPUT(a)\nq = AND(a, ghost)\n",
                                 lib_),
      ParseError);
}

TEST_F(SessionCacheTest, ReadDesignFileThrowsLikeTheParser) {
  EXPECT_THROW((void)read_design_file("/nonexistent/x.bench"), ParseError);
}

TEST_F(SessionCacheTest, CacheHitsReturnTheSameSession) {
  SessionCache cache;
  const auto first = cache.get_or_build("a", kDesignA, lib_);
  const auto second = cache.get_or_build("a", kDesignA, lib_);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.entries(), 1u);

  const auto other = cache.get_or_build("b", kDesignB, lib_);
  EXPECT_NE(other.get(), first.get());
  EXPECT_EQ(cache.entries(), 2u);
}

TEST_F(SessionCacheTest, EvictsLeastRecentlyUsedByEntryBound) {
  SessionCacheOptions options;
  options.max_entries = 2;
  SessionCache cache(options);
  const auto a = cache.get_or_build("a", kDesignA, lib_);
  (void)cache.get_or_build("b", kDesignB, lib_);
  (void)cache.get_or_build("a", kDesignA, lib_);  // refresh a
  (void)cache.get_or_build("c", kDesignC, lib_);  // evicts b
  EXPECT_EQ(cache.entries(), 2u);
  // "a" survived (refreshed); rebuilding it is still a hit.
  EXPECT_EQ(cache.get_or_build("a", kDesignA, lib_).get(), a.get());
  // "b" was evicted: a rebuild produces a fresh session.
  const auto b2 = cache.get_or_build("b", kDesignB, lib_);
  ASSERT_NE(b2, nullptr);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST_F(SessionCacheTest, MemoryBoundAlwaysKeepsTheMostRecentSession) {
  SessionCacheOptions options;
  options.max_bytes = 1;  // everything oversized
  SessionCache cache(options);
  (void)cache.get_or_build("a", kDesignA, lib_);
  EXPECT_EQ(cache.entries(), 1u);  // most recent survives the bound
  const auto b = cache.get_or_build("b", kDesignB, lib_);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.get_or_build("b", kDesignB, lib_).get(), b.get());
}

TEST_F(SessionCacheTest, EvictedSessionsStayUsable) {
  SessionCacheOptions options;
  options.max_entries = 1;
  SessionCache cache(options);
  const auto a = cache.get_or_build("a", kDesignA, lib_);
  (void)cache.get_or_build("b", kDesignB, lib_);  // evicts a
  // The shared_ptr keeps the evicted session alive for in-flight work.
  EXPECT_EQ(a->netlist->num_flip_flops(), 1u);
  EXPECT_NE(a->kernel_context, nullptr);
}

}  // namespace
}  // namespace cwsp::service
