#include "spice/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/subckt.hpp"

namespace cwsp::spice {
namespace {

using namespace cwsp::literals;

TEST(Transient, ResistorDividerDc) {
  Circuit c;
  const int a = c.node("a");
  const int mid = c.node("mid");
  c.add_voltage_source("V1", a, kGround, SourceFunction::dc(2.0));
  c.add_resistor("R1", a, mid, 1.0_kohm);
  c.add_resistor("R2", mid, kGround, 1.0_kohm);
  const auto v = solve_dc(c);
  EXPECT_NEAR(v[static_cast<std::size_t>(mid)], 1.0, 1e-6);  // gmin leak
  EXPECT_NEAR(v[static_cast<std::size_t>(a)], 2.0, 1e-6);
}

TEST(Transient, RcChargingMatchesAnalytic) {
  // 1 kΩ into 10 fF: τ = 10 ps. Step from 0 to 1 V at t=0 via pulse.
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_voltage_source("V1", in, kGround,
                       SourceFunction::pulse(0.0, 1.0, 0.0, 0.01, 1e6, 1.0));
  c.add_resistor("R1", in, out, 1.0_kohm);
  c.add_capacitor("C1", out, kGround, 10.0_fF);

  TransientOptions options;
  options.t_stop_ps = 100.0;
  options.dt_ps = 0.05;
  const auto result = run_transient(c, options, {out});
  const auto& w = result.probe(out);

  // v(t) = 1 − e^{−t/τ}; backward Euler with dt ≪ τ tracks within ~1%.
  for (double t : {10.0, 20.0, 50.0}) {
    const double expected = 1.0 - std::exp(-t / 10.0);
    EXPECT_NEAR(w.value_at(t), expected, 0.01) << "at t=" << t;
  }
  // Fully settled.
  EXPECT_NEAR(w.value_at(95.0), 1.0, 1e-3);
}

TEST(Transient, CurrentSourceIntoCapacitorIntegrates) {
  // I = 0.1 mA into 100 fF for 100 ps → ΔV = I·t/C = 0.1·100/100 = 0.1 V/ps·…
  // (mA·ps = fC; fC/fF = V): ΔV = 10 fC / 100 fF… = 0.1 V per 100 ps.
  Circuit c;
  const int n = c.node("n");
  // Pulse starting at t=0 (zero at the DC operating point; a DC current
  // source into a floating capacitor has no finite operating point).
  c.add_current_source("I1", kGround, n,
                       SourceFunction::pulse(0.0, 0.1, 0.0, 0.01, 1e6, 1.0));
  c.add_capacitor("C1", n, kGround, 100.0_fF);
  TransientOptions options;
  options.t_stop_ps = 100.0;
  options.dt_ps = 0.5;
  const auto result = run_transient(c, options, {n});
  EXPECT_NEAR(result.probe(n).value_at(100.0), 0.1, 1e-3);
}

TEST(Transient, InverterStaticLevels) {
  SpiceTech tech;
  Circuit c;
  const int vdd = add_vdd(c, tech);
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_voltage_source("Vin", in, kGround, SourceFunction::dc(0.0));
  add_inverter(c, "x0", in, out, vdd, 1.0, 1.0, tech);
  const auto v = solve_dc(c);
  // Input low → output pulled to VDD.
  EXPECT_NEAR(v[static_cast<std::size_t>(out)], tech.vdd, 0.01);
}

TEST(Transient, InverterSwitches) {
  SpiceTech tech;
  Circuit c;
  const int vdd = add_vdd(c, tech);
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_voltage_source(
      "Vin", in, kGround,
      SourceFunction::pulse(0.0, tech.vdd, 100.0, 10.0, 400.0, 10.0));
  add_inverter(c, "x0", in, out, vdd, 1.0, 1.0, tech);

  TransientOptions options;
  options.t_stop_ps = 800.0;
  const auto result = run_transient(c, options, {out});
  const auto& w = result.probe(out);
  EXPECT_NEAR(w.value_at(50.0), tech.vdd, 0.02);   // input low
  EXPECT_NEAR(w.value_at(400.0), 0.0, 0.02);       // input high
  EXPECT_NEAR(w.value_at(750.0), tech.vdd, 0.02);  // input low again
}

TEST(Transient, DiodeClampLimitsExcursion) {
  SpiceTech tech;
  Circuit c;
  const int vdd = add_vdd(c, tech);
  const int n = c.node("n");
  c.add_capacitor("C1", n, kGround, 1.0_fF);
  add_node_clamps(c, "x", n, vdd, tech);
  // Strong constant current shoved into the node; clamp must hold it near
  // vdd + ~0.6-0.7 V instead of integrating without bound.
  c.add_current_source("I1", kGround, n, SourceFunction::dc(0.3));
  TransientOptions options;
  options.t_stop_ps = 500.0;
  const auto result = run_transient(c, options, {n});
  EXPECT_LT(result.probe(n).peak(), 1.85);
  EXPECT_GT(result.probe(n).peak(), 1.4);
}

TEST(Transient, NewtonConvergesOnNonlinearCircuits) {
  SpiceTech tech;
  Circuit c;
  const int vdd = add_vdd(c, tech);
  // Three chained inverters.
  const int in = c.node("in");
  c.add_voltage_source(
      "Vin", in, kGround,
      SourceFunction::pulse(0.0, tech.vdd, 50.0, 5.0, 200.0, 5.0));
  int prev = in;
  for (int i = 0; i < 3; ++i) {
    const int out = c.node("n" + std::to_string(i));
    add_inverter(c, "x" + std::to_string(i), prev, out, vdd, 1.0, 1.0, tech);
    prev = out;
  }
  TransientOptions options;
  options.t_stop_ps = 500.0;
  const auto result = run_transient(c, options, {prev});
  // Odd chain → final output inverted w.r.t. input.
  EXPECT_NEAR(result.probe(prev).value_at(40.0), tech.vdd, 0.05);
  EXPECT_NEAR(result.probe(prev).value_at(200.0), 0.0, 0.05);
  EXPECT_GT(result.steps, 0u);
}

TEST(Transient, SingularFloatingNodeHandledByGmin) {
  // A node connected only through a capacitor would be singular without
  // gmin; with it, the solve succeeds and the node floats at 0.
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_voltage_source("V1", a, kGround, SourceFunction::dc(1.0));
  c.add_capacitor("C1", a, b, 1.0_fF);
  TransientOptions options;
  options.t_stop_ps = 10.0;
  EXPECT_NO_THROW(run_transient(c, options, {b}));
}

}  // namespace
}  // namespace cwsp::spice
