// Exhaustive property check of the wide-gate decomposition: for every
// n-ary function and arity up to 10, the tree of ≤4-input library cells
// must compute exactly the reference boolean function on all 2^n inputs.

#include <gtest/gtest.h>

#include "netlist/decompose.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp {
namespace {

struct DecomposeCase {
  GateFunction fn;
  int arity;
};

bool reference(GateFunction fn, unsigned bits, int n) {
  bool and_all = true;
  bool or_any = false;
  bool parity = false;
  for (int i = 0; i < n; ++i) {
    const bool b = (bits >> i) & 1u;
    and_all = and_all && b;
    or_any = or_any || b;
    parity = parity != b;
  }
  switch (fn) {
    case GateFunction::kAnd: return and_all;
    case GateFunction::kNand: return !and_all;
    case GateFunction::kOr: return or_any;
    case GateFunction::kNor: return !or_any;
    case GateFunction::kXor: return parity;
    case GateFunction::kXnor: return !parity;
    case GateFunction::kNot: return !((bits >> 0) & 1u);
    case GateFunction::kBuf: return (bits >> 0) & 1u;
    case GateFunction::kMux:
      return ((bits >> 2) & 1u) ? ((bits >> 1) & 1u) : (bits & 1u);
  }
  return false;
}

class DecomposeExhaustive : public ::testing::TestWithParam<DecomposeCase> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(DecomposeExhaustive, MatchesReferenceOnAllInputs) {
  const auto& tc = GetParam();
  Netlist n(lib_, "decompose");
  std::vector<NetId> pis;
  for (int i = 0; i < tc.arity; ++i) {
    pis.push_back(n.add_primary_input("i" + std::to_string(i)));
  }
  const NetId out = n.add_net("out");
  build_function(n, tc.fn, pis, out);
  n.mark_primary_output(out);
  n.validate();

  // Every intermediate cell respects the library's 4-input limit.
  for (GateId g : n.gate_ids()) {
    EXPECT_LE(n.cell_of(g).num_inputs(), 4);
  }

  sim::LogicSim sim(n);
  for (unsigned bits = 0; bits < (1u << tc.arity); ++bits) {
    std::vector<bool> inputs(static_cast<std::size_t>(tc.arity));
    for (int i = 0; i < tc.arity; ++i) inputs[i] = (bits >> i) & 1u;
    sim.set_inputs(inputs);
    sim.evaluate();
    EXPECT_EQ(sim.value(out), reference(tc.fn, bits, tc.arity))
        << to_string(n.cell_of(GateId{0}).kind()) << " arity " << tc.arity
        << " bits " << bits;
  }
}

std::vector<DecomposeCase> all_cases() {
  std::vector<DecomposeCase> cases;
  for (GateFunction fn : {GateFunction::kAnd, GateFunction::kOr,
                          GateFunction::kNand, GateFunction::kNor}) {
    for (int arity : {1, 2, 3, 4, 5, 7, 8, 9, 10}) {
      cases.push_back({fn, arity});
    }
  }
  for (GateFunction fn : {GateFunction::kXor, GateFunction::kXnor}) {
    for (int arity : {2, 3, 5, 8, 10}) cases.push_back({fn, arity});
  }
  cases.push_back({GateFunction::kNot, 1});
  cases.push_back({GateFunction::kBuf, 1});
  cases.push_back({GateFunction::kMux, 3});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, DecomposeExhaustive,
                         ::testing::ValuesIn(all_cases()));

}  // namespace
}  // namespace cwsp
