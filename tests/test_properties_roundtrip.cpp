// Round-trip property: any netlist written to the extended .bench dialect
// and re-parsed must be behaviourally identical (same outputs for the
// same stimulus over multiple cycles), even when the writer expands
// AOI/OAI cells into primitive gates.

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist/writer.hpp"
#include "netlist_fuzz.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp {
namespace {

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(RoundTrip, BenchWriteParsePreservesBehaviour) {
  const auto original = testing::make_random_netlist(lib_, GetParam());
  const auto reparsed =
      parse_bench_string(to_bench_string(original), lib_, "rt");

  ASSERT_EQ(reparsed.primary_inputs().size(),
            original.primary_inputs().size());
  ASSERT_EQ(reparsed.primary_outputs().size(),
            original.primary_outputs().size());
  ASSERT_EQ(reparsed.num_flip_flops(), original.num_flip_flops());

  // PO name order must be preserved.
  for (std::size_t i = 0; i < original.primary_outputs().size(); ++i) {
    EXPECT_EQ(original.net(original.primary_outputs()[i]).name,
              reparsed.net(reparsed.primary_outputs()[i]).name);
  }

  sim::LogicSim sim_a(original);
  sim::LogicSim sim_b(reparsed);
  Rng rng(GetParam() ^ 0xfeed);
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::vector<bool> inputs(original.primary_inputs().size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i] = rng.next_bool();
    }
    sim_a.set_inputs(inputs);
    sim_b.set_inputs(inputs);
    sim_a.evaluate();
    sim_b.evaluate();
    EXPECT_EQ(sim_a.output_values(), sim_b.output_values())
        << "seed " << GetParam() << " cycle " << cycle;
    sim_a.clock();
    sim_b.clock();
  }
}

TEST_P(RoundTrip, DoubleRoundTripIsStable) {
  const auto original = testing::make_random_netlist(lib_, GetParam());
  const auto once = parse_bench_string(to_bench_string(original), lib_, "r1");
  const auto twice = parse_bench_string(to_bench_string(once), lib_, "r2");
  // After the first round-trip all cells have .bench spellings, so the
  // second one is structure-preserving.
  EXPECT_EQ(twice.num_gates(), once.num_gates());
  EXPECT_EQ(twice.num_flip_flops(), once.num_flip_flops());
  EXPECT_EQ(twice.num_nets(), once.num_nets());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(3, 17, 99, 256, 1024, 4096,
                                           31337));

}  // namespace
}  // namespace cwsp
