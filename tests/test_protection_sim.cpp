// Executable check of the paper's §3.2 case analysis: every strike
// scenario must leave the committed output stream identical to golden.

#include "cwsp/protection_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp::core {
namespace {

using namespace cwsp::literals;

class ProtectionSimTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();

  // A small state machine: two FFs, feedback, visible outputs.
  Netlist netlist_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q1)
OUTPUT(y)
t1 = NAND(a, q2)
t2 = XOR(t1, b)
d1 = NOT(t2)
q1 = DFF(d1)
q2 = DFF(t1)
y  = AND(q1, q2)
)",
                                        lib_);

  ProtectionParams params_ = ProtectionParams::q100();
  Picoseconds period_{2000.0};

  std::vector<std::vector<bool>> inputs(std::size_t n) const {
    // Deterministic varied input stream.
    std::vector<std::vector<bool>> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = {(i % 2) == 0, (i % 3) == 0};
    }
    return v;
  }

  ScheduledStrike capture_corrupting_strike(std::size_t cycle) const {
    // A 400 ps glitch on d1 spanning the capture edge at 2000 ps.
    ScheduledStrike s;
    s.cycle = cycle;
    s.target = StrikeTarget::kFunctional;
    s.strike.node = *netlist_.find_net("d1");
    s.strike.start = 1800.0_ps;
    s.strike.width = 400.0_ps;
    return s;
  }
};

TEST_F(ProtectionSimTest, CleanRunMatchesGolden) {
  ProtectionSim sim(netlist_, params_, period_);
  const auto r = sim.run(inputs(10), {});
  EXPECT_EQ(r.committed_outputs, r.golden_outputs);
  EXPECT_EQ(r.bubbles, 0u);
  EXPECT_EQ(r.total_cycles, 10u);
  EXPECT_TRUE(r.recovered());
}

TEST_F(ProtectionSimTest, CaptureCorruptionDetectedAndRepaired) {
  ProtectionSim sim(netlist_, params_, period_);
  const auto r = sim.run(inputs(10), {capture_corrupting_strike(3)});
  EXPECT_TRUE(r.recovered());
  EXPECT_EQ(r.committed_outputs, r.golden_outputs);
  EXPECT_EQ(r.detected_errors, 1u);
  EXPECT_EQ(r.bubbles, 1u);
  EXPECT_EQ(r.total_cycles, 11u);  // one squashed cycle
}

TEST_F(ProtectionSimTest, SameStrikeCorruptsUnprotectedDesign) {
  ProtectionSim sim(netlist_, params_, period_);
  const auto r = sim.run_unprotected(inputs(10), {capture_corrupting_strike(3)});
  EXPECT_GT(r.corrupted_cycles, 0u);
}

TEST_F(ProtectionSimTest, MaskedGlitchCausesNoBubble) {
  ProtectionSim sim(netlist_, params_, period_);
  ScheduledStrike s = capture_corrupting_strike(3);
  s.strike.start = 200.0_ps;  // dies long before capture
  const auto r = sim.run(inputs(10), {s});
  EXPECT_TRUE(r.recovered());
  EXPECT_EQ(r.bubbles, 0u);
  EXPECT_EQ(r.total_cycles, 10u);
}

TEST_F(ProtectionSimTest, EqCheckerGlitchAtEdgeCausesNeedlessRecompute) {
  ProtectionSim sim(netlist_, params_, period_);
  ScheduledStrike s;
  s.cycle = 4;
  s.target = StrikeTarget::kEqChecker;
  s.strike.start = 1900.0_ps;
  s.strike.width = 300.0_ps;  // spans the edge at 2000 ps
  const auto r = sim.run(inputs(10), {s});
  EXPECT_TRUE(r.recovered());
  EXPECT_EQ(r.spurious_recomputes, 1u);
  EXPECT_EQ(r.committed_outputs, r.golden_outputs);
}

TEST_F(ProtectionSimTest, EqCheckerGlitchMidCycleIgnored) {
  ProtectionSim sim(netlist_, params_, period_);
  ScheduledStrike s;
  s.cycle = 4;
  s.target = StrikeTarget::kEqChecker;
  s.strike.start = 500.0_ps;
  s.strike.width = 300.0_ps;  // gone well before the edge
  const auto r = sim.run(inputs(10), {s});
  EXPECT_TRUE(r.recovered());
  EXPECT_EQ(r.bubbles, 0u);
}

TEST_F(ProtectionSimTest, EqglbfStrikeBenign) {
  ProtectionSim sim(netlist_, params_, period_);
  ScheduledStrike s;
  s.cycle = 2;
  s.target = StrikeTarget::kEqglbfDff;
  s.strike.width = 300.0_ps;
  const auto r = sim.run(inputs(10), {s});
  EXPECT_TRUE(r.recovered());
  EXPECT_EQ(r.committed_outputs, r.golden_outputs);
}

TEST_F(ProtectionSimTest, CwStarStrikeBenign) {
  ProtectionSim sim(netlist_, params_, period_);
  for (std::size_t ff = 0; ff < 2; ++ff) {
    ScheduledStrike s;
    s.cycle = 5;
    s.target = StrikeTarget::kCwStarDff;
    s.ff_index = ff;
    s.strike.width = 300.0_ps;
    const auto r = sim.run(inputs(10), {s});
    EXPECT_TRUE(r.recovered()) << "ff=" << ff;
  }
}

TEST_F(ProtectionSimTest, CwspOutputStrikeBenign) {
  ProtectionSim sim(netlist_, params_, period_);
  ScheduledStrike s;
  s.cycle = 5;
  s.target = StrikeTarget::kCwspOutput;
  s.strike.width = 500.0_ps;
  const auto r = sim.run(inputs(10), {s});
  EXPECT_TRUE(r.recovered());
  EXPECT_EQ(r.bubbles, 0u);
}

TEST_F(ProtectionSimTest, QNetGlitchAtClkDelCausesSpuriousRecompute) {
  ProtectionSim sim(netlist_, params_, period_);
  ScheduledStrike s;
  s.cycle = 4;
  s.target = StrikeTarget::kFunctional;
  s.strike.node = *netlist_.find_net("q1");
  // Span the CLK_DEL sampling moment (1259 ps for Q=100 fC params).
  s.strike.start = 1200.0_ps;
  s.strike.width = 200.0_ps;
  const auto r = sim.run(inputs(10), {s});
  EXPECT_TRUE(r.recovered());
  EXPECT_EQ(r.committed_outputs, r.golden_outputs);
  EXPECT_GE(r.bubbles, 1u);
}

TEST_F(ProtectionSimTest, MultipleSpacedStrikesAllRecovered) {
  ProtectionSim sim(netlist_, params_, period_);
  std::vector<ScheduledStrike> strikes;
  for (std::size_t c : {2u, 6u, 10u, 14u}) {
    strikes.push_back(capture_corrupting_strike(c));
  }
  const auto r = sim.run(inputs(20), strikes);
  EXPECT_TRUE(r.recovered());
  EXPECT_EQ(r.committed_outputs, r.golden_outputs);
}

TEST_F(ProtectionSimTest, OverwideGlitchBreaksGuarantee) {
  // Ablation: a glitch wider than δ voids the CWSP guarantee; with the
  // capture corrupted and CW equally wrong, the error commits silently.
  ProtectionSim sim(netlist_, params_, period_);
  ScheduledStrike s = capture_corrupting_strike(3);
  s.strike.start = 1400.0_ps;
  s.strike.width = 700.0_ps;  // > δ = 500 ps, spans capture at 2000 ps
  const auto r = sim.run(inputs(10), {s});
  EXPECT_FALSE(r.recovered());
}

TEST_F(ProtectionSimTest, WithoutEqglbfTheProtocolFails) {
  // Ablation of the paper's §3.2 argument: without the EQGLBF suppression
  // flip-flop, the post-repair equivalence check compares the repaired Q
  // against the squashed cycle's stale D and recomputes indefinitely.
  ProtectionSimOptions options;
  options.eqglbf_suppression = false;
  ProtectionSim sim(netlist_, params_, period_, options);
  const auto r = sim.run(inputs(10), {capture_corrupting_strike(3)});
  EXPECT_FALSE(r.recovered());
  EXPECT_TRUE(r.livelocked || r.silent_corruptions > 0);
}

TEST_F(ProtectionSimTest, PeriodBelowEq6Rejected) {
  // Eq. 6 minimum for Q=100 fC params is 1529 ps.
  EXPECT_THROW(ProtectionSim(netlist_, params_, Picoseconds(1500.0)), Error);
  EXPECT_NO_THROW(ProtectionSim(netlist_, params_, Picoseconds(1529.0)));
}

TEST_F(ProtectionSimTest, CombinationalNetlistRejected) {
  const auto comb = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(a)
)",
                                       lib_);
  EXPECT_THROW(ProtectionSim(comb, params_, period_), Error);
}

}  // namespace
}  // namespace cwsp::core
