#include "common/cli_args.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cwsp {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens, int first = 0) {
  std::vector<const char*> argv(tokens);
  return parse_cli_args(static_cast<int>(argv.size()), argv.data(), first);
}

TEST(CliArgsTest, SplitsPositionalsAndOptions) {
  const auto args = parse({"design.bench", "--runs", "10", "--json"});
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "design.bench");
  EXPECT_TRUE(args.has("runs"));
  EXPECT_EQ(args.number("runs", 0.0), 10.0);
  EXPECT_TRUE(args.has("json"));
  EXPECT_EQ(args.options.at("json"), "1");
}

TEST(CliArgsTest, BareWordAfterOptionBecomesItsValue) {
  // Documented ambiguity: a non-dash token after `--key` is the value.
  const auto args = parse({"--json", "more"});
  EXPECT_EQ(args.options.at("json"), "more");
  EXPECT_TRUE(args.positional.empty());
}

TEST(CliArgsTest, NegativeNumberIsConsumedAsValue) {
  // The regression this parser exists for: `--skew -5` must parse as
  // skew = -5, not as two valueless flags.
  const auto args = parse({"--skew", "-5"});
  ASSERT_TRUE(args.has("skew"));
  EXPECT_EQ(args.number("skew", 0.0), -5.0);
  EXPECT_TRUE(args.positional.empty());
}

TEST(CliArgsTest, NegativeFloatsAndExponents) {
  const auto args = parse({"--a", "-0.25", "--b", "-1e3", "--c", "-.5"});
  EXPECT_EQ(args.number("a", 0.0), -0.25);
  EXPECT_EQ(args.number("b", 0.0), -1000.0);
  EXPECT_EQ(args.number("c", 0.0), -0.5);
}

TEST(CliArgsTest, FollowingOptionIsNotAValue) {
  const auto args = parse({"--json", "--runs", "3"});
  EXPECT_EQ(args.options.at("json"), "1");
  EXPECT_EQ(args.number("runs", 0.0), 3.0);
}

TEST(CliArgsTest, IsNegativeNumberRejectsFlagsAndJunk) {
  EXPECT_TRUE(is_negative_number("-5"));
  EXPECT_TRUE(is_negative_number("-0.25"));
  EXPECT_TRUE(is_negative_number("-1e3"));
  EXPECT_FALSE(is_negative_number("-"));
  EXPECT_FALSE(is_negative_number("--skew"));
  EXPECT_FALSE(is_negative_number("-x"));
  EXPECT_FALSE(is_negative_number("-5x"));
  EXPECT_FALSE(is_negative_number("5"));
  EXPECT_FALSE(is_negative_number(""));
}

TEST(CliArgsTest, NumberFallbackAndErrors) {
  const auto args = parse({"--mode", "fast"});
  EXPECT_EQ(args.number("missing", 7.5), 7.5);
  EXPECT_EQ(args.text("mode", "slow"), "fast");
  EXPECT_EQ(args.text("missing", "slow"), "slow");
  EXPECT_THROW((void)args.number("mode", 0.0), Error);
}

TEST(CliArgsTest, FirstIndexSkipsProgramAndSubcommand) {
  const auto args = parse({"cwsp_tool", "lint", "d.bench", "--json"}, 2);
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "d.bench");
  EXPECT_TRUE(args.has("json"));
}

}  // namespace
}  // namespace cwsp
