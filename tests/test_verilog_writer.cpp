#include "netlist/verilog_writer.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp {
namespace {

class VerilogWriterTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(VerilogWriterTest, CombinationalModule) {
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
t1 = NAND(a, b)
y  = XOR(t1, a)
)",
                                    lib_, "comb");
  const auto v = to_verilog_string(n);
  EXPECT_NE(v.find("module comb"), std::string::npos);
  EXPECT_NE(v.find("input a"), std::string::npos);
  EXPECT_NE(v.find("output y"), std::string::npos);
  EXPECT_NE(v.find("nand"), std::string::npos);
  EXPECT_NE(v.find("xor"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // No FFs → no always block.
  EXPECT_EQ(v.find("always"), std::string::npos);
}

TEST_F(VerilogWriterTest, SequentialModule) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(q)
d = NOT(a)
q = DFF(d)
)",
                                    lib_, "seq");
  const auto v = to_verilog_string(n);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("q_r <= d;"), std::string::npos);
  EXPECT_NE(v.find("assign q = q_r;"), std::string::npos);
}

TEST_F(VerilogWriterTest, ExpressionCells) {
  Netlist n(lib_, "expr");
  const NetId a = n.add_primary_input("a");
  const NetId b = n.add_primary_input("b");
  const NetId s = n.add_primary_input("s");
  n.add_gate(lib_.cell_for(CellKind::kMux2), {a, b, s}, "m");
  n.add_gate(lib_.cell_for(CellKind::kAoi21), {a, b, s}, "x");
  n.mark_primary_output(*n.find_net("m"));
  n.mark_primary_output(*n.find_net("x"));
  const auto v = to_verilog_string(n);
  EXPECT_NE(v.find("assign m = s ? b : a;"), std::string::npos);
  EXPECT_NE(v.find("assign x = ~((a & b) | s);"), std::string::npos);
}

TEST_F(VerilogWriterTest, SanitizesAwkwardNames) {
  Netlist n(lib_, "weird-name");
  const NetId a = n.add_primary_input("sig.with-dots");
  const GateId g = n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "3bad");
  n.mark_primary_output(n.gate(g).output);
  const auto v = to_verilog_string(n);
  EXPECT_NE(v.find("module weird_name"), std::string::npos);
  EXPECT_NE(v.find("sig_with_dots"), std::string::npos);
  EXPECT_NE(v.find("n3bad"), std::string::npos);
  EXPECT_EQ(v.find("sig.with-dots"), std::string::npos);
}

TEST_F(VerilogWriterTest, ConstantsAssigned) {
  Netlist n(lib_, "consts");
  const NetId a = n.add_primary_input("a");
  const NetId one = n.add_constant(true, "tie_hi");
  const GateId g =
      n.add_gate(lib_.cell_for(CellKind::kAnd2), {a, one}, "y");
  n.mark_primary_output(n.gate(g).output);
  const auto v = to_verilog_string(n);
  EXPECT_NE(v.find("assign tie_hi = 1'b1;"), std::string::npos);
}

}  // namespace
}  // namespace cwsp
