// Structural co-verification of the recovery protocol: the fully
// elaborated hardened netlist, executed by the plain logic simulator with
// an architectural replay harness, must behave exactly like the golden
// design — including detection and repair after a state corruption.

#include "cwsp/elaborate_system.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp::core {
namespace {

class ElaborateSystemTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist source_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q1)
OUTPUT(y)
t1 = NAND(a, q2)
t2 = XOR(t1, b)
d1 = NOT(t2)
q1 = DFF(d1)
q2 = DFF(t1)
y  = AND(q1, q2)
)",
                                       lib_);

  static std::vector<bool> pattern(std::size_t i) {
    return {(i % 2) == 0, (i % 3) == 0};
  }
};

TEST_F(ElaborateSystemTest, StructureSane) {
  const auto sys = elaborate_hardened_system(source_);
  // 2 system FFs + 2 shadow FFs + EQGLBF.
  EXPECT_EQ(sys.netlist.num_flip_flops(), 5u);
  EXPECT_EQ(sys.system_ffs.size(), 2u);
  // Original POs + eqglb.
  EXPECT_EQ(sys.netlist.primary_outputs().size(),
            source_.primary_outputs().size() + 1);
  EXPECT_GT(sys.netlist.num_gates(), source_.num_gates());
}

TEST_F(ElaborateSystemTest, CleanRunMatchesGoldenAndNeverFlags) {
  const auto sys = elaborate_hardened_system(source_);
  sim::LogicSim golden(source_);
  sim::LogicSim hardened(sys.netlist);

  // One warm-up cycle arms EQGLBF (it powers up low, forcing EQ high).
  hardened.step(pattern(0));
  golden.step(pattern(0));

  for (std::size_t i = 1; i < 20; ++i) {
    golden.set_inputs(pattern(i));
    hardened.set_inputs(pattern(i));
    golden.evaluate();
    hardened.evaluate();
    // Functional outputs identical; EQGLB high (no error).
    const auto g = golden.output_values();
    const auto h = hardened.output_values();
    for (std::size_t k = 0; k < g.size(); ++k) {
      EXPECT_EQ(h[k], g[k]) << "cycle " << i << " output " << k;
    }
    EXPECT_TRUE(hardened.value(sys.eqglb)) << "cycle " << i;
    golden.clock();
    hardened.clock();
  }
}

TEST_F(ElaborateSystemTest, StateCorruptionDetectedAndRepaired) {
  const auto sys = elaborate_hardened_system(source_);
  sim::LogicSim golden(source_);
  sim::LogicSim hardened(sys.netlist);

  std::size_t pi = 0;
  auto run_cycle = [&](bool replay) {
    if (!replay) {
      golden.set_inputs(pattern(pi));
      golden.evaluate();
      golden.clock();
    }
    hardened.set_inputs(pattern(pi));
    hardened.evaluate();
  };

  // Warm up.
  run_cycle(false);
  hardened.clock();
  ++pi;
  run_cycle(false);
  hardened.clock();
  ++pi;

  // Corrupt system FF 0 (an SET captured at the edge): flip its state.
  auto state = hardened.ff_state();
  const std::size_t victim = sys.system_ffs[0].index();
  state[victim] = !state[victim];
  hardened.set_ff_state(state);

  // The corrupted cycle: EQGLB must fall (shadow FF holds the correct
  // value), outputs of this cycle are squashed by the architecture.
  hardened.set_inputs(pattern(pi));
  hardened.evaluate();
  EXPECT_FALSE(hardened.value(sys.eqglb));
  hardened.clock();  // repair edge: MUX feeds CW into the system FF

  // Replay the squashed input; from here on the run must re-converge with
  // golden, which never saw the corruption.
  for (; pi < 12; ++pi) {
    golden.set_inputs(pattern(pi));
    hardened.set_inputs(pattern(pi));
    golden.evaluate();
    hardened.evaluate();
    const auto g = golden.output_values();
    const auto h = hardened.output_values();
    for (std::size_t k = 0; k < g.size(); ++k) {
      EXPECT_EQ(h[k], g[k]) << "cycle " << pi;
    }
    golden.clock();
    hardened.clock();
  }
}

TEST_F(ElaborateSystemTest, SuppressionPreventsDoubleRecompute) {
  const auto sys = elaborate_hardened_system(source_);
  sim::LogicSim hardened(sys.netlist);

  hardened.step(pattern(0));
  hardened.step(pattern(1));

  auto state = hardened.ff_state();
  state[sys.system_ffs[1].index()] = !state[sys.system_ffs[1].index()];
  hardened.set_ff_state(state);

  hardened.set_inputs(pattern(2));
  hardened.evaluate();
  ASSERT_FALSE(hardened.value(sys.eqglb));  // detected
  hardened.clock();

  // Replay cycle: EQGLBF (now low) must force EQGLB back high even though
  // the shadow FFs hold the squashed cycle's stale D values.
  hardened.set_inputs(pattern(2));
  hardened.evaluate();
  EXPECT_TRUE(hardened.value(sys.eqglb));
}

TEST_F(ElaborateSystemTest, CombinationalSourceRejected) {
  const auto comb = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(a)
)",
                                       lib_);
  EXPECT_THROW(elaborate_hardened_system(comb), Error);
}

}  // namespace
}  // namespace cwsp::core
