#include "sim/equivalence.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist/transform.hpp"
#include "netlist_fuzz.hpp"

namespace cwsp {
namespace {

class EquivalenceTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(EquivalenceTest, DeMorganPairExhaustive) {
  const auto a = parse_bench_string(R"(
INPUT(x)
INPUT(y)
OUTPUT(o)
o = NAND(x, y)
)",
                                    lib_);
  const auto b = parse_bench_string(R"(
INPUT(x)
INPUT(y)
OUTPUT(o)
nx = NOT(x)
ny = NOT(y)
o  = OR(nx, ny)
)",
                                    lib_);
  const auto r = check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.vectors_checked, 4u);
}

TEST_F(EquivalenceTest, FindsCounterexample) {
  const auto a = parse_bench_string(R"(
INPUT(x)
INPUT(y)
OUTPUT(o)
o = AND(x, y)
)",
                                    lib_);
  const auto b = parse_bench_string(R"(
INPUT(x)
INPUT(y)
OUTPUT(o)
o = OR(x, y)
)",
                                    lib_);
  const auto r = check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  const auto& cex = *r.counterexample;
  // AND and OR differ exactly where inputs differ.
  EXPECT_NE(cex.inputs[0], cex.inputs[1]);
  EXPECT_NE(cex.value_a, cex.value_b);
}

TEST_F(EquivalenceTest, SequentialStateMatchedByName) {
  const auto a = parse_bench_string(R"(
INPUT(en)
OUTPUT(o)
d = XOR(en, q)
q = DFF(d)
o = BUFF(q)
)",
                                    lib_);
  // Same design with gates declared in a different order.
  const auto b = parse_bench_string(R"(
INPUT(en)
OUTPUT(o)
o = BUFF(q)
q = DFF(d)
d = XOR(en, q)
)",
                                    lib_);
  const auto r = check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.vectors_checked, 4u);  // 1 PI + 1 FF
}

TEST_F(EquivalenceTest, OptimizedNetlistsEquivalent) {
  for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
    const auto original = testing::make_random_netlist(lib_, seed);
    const auto [optimized, stats] = optimize(original);
    (void)stats;
    EquivalenceOptions options;
    options.random_vectors = 512;
    options.seed = seed;
    const auto r = check_equivalence(original, optimized, options);
    EXPECT_TRUE(r.equivalent) << "seed " << seed;
  }
}

TEST_F(EquivalenceTest, InterfaceMismatchRejected) {
  const auto a = parse_bench_string("INPUT(x)\nOUTPUT(o)\no = NOT(x)\n",
                                    lib_);
  const auto b = parse_bench_string(
      "INPUT(x)\nINPUT(y)\nOUTPUT(o)\no = AND(x, y)\n", lib_);
  EXPECT_THROW(check_equivalence(a, b), Error);
}

TEST_F(EquivalenceTest, FfNameMismatchRejected) {
  const auto a = parse_bench_string(
      "INPUT(x)\nOUTPUT(qa)\nqa = DFF(x)\n", lib_);
  const auto b = parse_bench_string(
      "INPUT(x)\nOUTPUT(qb)\nqb = DFF(x)\n", lib_);
  EXPECT_THROW(check_equivalence(a, b), Error);
}

}  // namespace
}  // namespace cwsp
