// Integration sweep: every benchmark circuit of Tables 1–3 must
// generate, calibrate and reproduce the paper's published overheads.

#include <gtest/gtest.h>

#include "bencharness/generator.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"

namespace cwsp::bench {
namespace {

class SuiteCalibration : public ::testing::TestWithParam<const char*> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(SuiteCalibration, GeneratesWithinTolerance) {
  const auto& spec = find_benchmark(GetParam());
  const auto g = generate_benchmark(spec, lib_);
  EXPECT_NEAR(g.measured_dmax.value(), spec.dmax_ps, 8.0) << spec.name;
  EXPECT_NEAR(g.measured_area.value(), spec.regular_area_um2, 0.05)
      << spec.name;
  EXPECT_EQ(g.netlist.primary_outputs().size(),
            static_cast<std::size_t>(spec.num_outputs));
  EXPECT_EQ(g.netlist.primary_inputs().size(),
            static_cast<std::size_t>(spec.num_inputs));
}

TEST_P(SuiteCalibration, ReproducesPaperOverheads) {
  const auto& spec = find_benchmark(GetParam());
  const auto g = generate_benchmark(spec, lib_);

  auto check = [&](const core::ProtectionParams& params,
                   const std::optional<PaperHardened>& paper,
                   bool custom_delta) {
    if (!paper.has_value()) return;
    core::ProtectionParams effective = params;
    if (custom_delta) {
      const auto timing = core::timing_with_assumed_dmin(g.measured_dmax);
      effective = core::ProtectionParams::for_glitch_width(
          core::max_protected_glitch(timing, params));
    }
    const auto design =
        core::harden_assuming_balanced_paths(g.netlist, effective);
    // Area overhead within 0.5 percentage points of the published value
    // (the four inferred-FF-count LGSynth rows dominate the residual).
    EXPECT_NEAR(design.area_overhead_pct(), paper->area_overhead_pct, 0.5)
        << spec.name;
    // Delay overhead within 0.05 points (11.5 ps penalty is exact; only
    // the generated Dmax differs slightly).
    EXPECT_NEAR(design.delay_overhead_pct(),
                11.5 / (spec.dmax_ps + 109.0) * 100.0, 0.05)
        << spec.name;
  };

  check(core::ProtectionParams::q150(), spec.table1_q150, false);
  check(core::ProtectionParams::q100(), spec.table2_q100, false);
  check(core::ProtectionParams::q100(), spec.table3_custom_delta, true);
}

INSTANTIATE_TEST_SUITE_P(
    AllCircuits, SuiteCalibration,
    ::testing::Values("alu2", "alu4", "apex2", "C1908", "C3540", "C6288",
                      "seq", "C7552", "C880", "C5315", "dalu", "apex4",
                      "apex3", "b11_LoptLC", "C1355", "C432", "C499",
                      "ex5p", "k2", "apex1", "ex4p"));

}  // namespace
}  // namespace cwsp::bench
