#include "cwsp/area_report.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp::core {
namespace {

class AreaReportTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q1)
OUTPUT(q2)
t1 = NAND(a, b)
t2 = XOR(t1, a)
q1 = DFF(t1)
q2 = DFF(t2)
)",
                                        lib_);
};

TEST_F(AreaReportTest, ComponentsSumToProtectionTotal) {
  const auto design = harden(netlist_, ProtectionParams::q100());
  const auto report = build_area_report(design);
  double sum = 0.0;
  for (const auto& c : report.components) sum += c.total.value();
  EXPECT_NEAR(sum, report.protection_total.value(), 1e-9);
}

TEST_F(AreaReportTest, PerFfComponentsSumToCalibrated) {
  const auto design = harden(netlist_, ProtectionParams::q100());
  const auto report = build_area_report(design);
  double units = 0.0;
  for (const auto& c : report.components) units += c.units_per_ff;
  EXPECT_NEAR(units * cal::kUnitActiveArea.value(),
              report.per_ff_calibrated.value(), 1e-9);
}

TEST_F(AreaReportTest, ResidualIsPositiveButMinority) {
  // The itemised devices must account for most of the calibrated per-FF
  // area; the unattributed custom-sizing share is positive and < 50%.
  const auto design = harden(netlist_, ProtectionParams::q100());
  const auto report = build_area_report(design);
  EXPECT_GT(report.per_ff_unattributed.value(), 0.0);
  EXPECT_LT(report.per_ff_unattributed.value(),
            0.5 * report.per_ff_calibrated.value());
}

TEST_F(AreaReportTest, Q150GrowsCwspAndDelayLineOnly) {
  const auto d100 = harden(netlist_, ProtectionParams::q100());
  const auto d150 = harden(netlist_, ProtectionParams::q150());
  const auto r100 = build_area_report(d100);
  const auto r150 = build_area_report(d150);
  for (std::size_t i = 0; i < r100.components.size(); ++i) {
    const auto& a = r100.components[i];
    const auto& b = r150.components[i];
    // Small epsilon: the residual differs only by fp noise between the
    // two charge levels (the calibrated delta is exactly the CWSP +
    // delay-line growth).
    const bool q_dependent = b.units_per_ff > a.units_per_ff + 1e-6;
    if (q_dependent) {
      EXPECT_TRUE(b.name.find("CWSP") != std::string::npos ||
                  b.name.find("CLK_DEL") != std::string::npos)
          << b.name;
    }
  }
}

TEST_F(AreaReportTest, FormatMentionsKeyComponents) {
  const auto design = harden(netlist_, ProtectionParams::q100());
  const auto text = format_area_report(build_area_report(design));
  EXPECT_NE(text.find("CWSP element (30/12)"), std::string::npos);
  EXPECT_NE(text.find("CLK_DEL delay line (8 seg)"), std::string::npos);
  EXPECT_NE(text.find("EQGLBF"), std::string::npos);
  EXPECT_NE(text.find("per-FF (calibrated)"), std::string::npos);
}

}  // namespace
}  // namespace cwsp::core
