#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cwsp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ZeroBoundRejected) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, StreamDeterministicForSeedAndId) {
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsWithDifferentIdsDiverge) {
  Rng a = Rng::stream(42, 0);
  Rng b = Rng::stream(42, 1);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, StreamsWithDifferentSeedsDiverge) {
  Rng a = Rng::stream(1, 5);
  Rng b = Rng::stream(2, 5);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, StreamZeroDiffersFromPlainSeed) {
  // stream(seed, 0) must NOT alias the sequential Rng(seed) chain — a
  // campaign's per-strike streams stay independent of planner draws.
  Rng plain(42);
  Rng stream = Rng::stream(42, 0);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (plain.next_u64() != stream.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

}  // namespace
}  // namespace cwsp
