// Thread-safety of the compiled kernel's shared state: many workers
// share one immutable CompiledKernelContext (whose FlatNetlistView
// memoizes fanout cones lazily, under a mutex) while each owns a private
// CompiledEventSim with its own golden cache. Concurrent strike
// simulation across every net must (a) not race — this test runs in the
// ASan/UBSan CI jobs — and (b) produce results identical to a
// single-threaded reference, per the determinism contract.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "netlist_fuzz.hpp"
#include "set/strike_plan.hpp"
#include "sim/compiled_kernel.hpp"

namespace cwsp {
namespace {

std::vector<bool> bits_for(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.next_bool();
  return bits;
}

set::Strike strike_for(NetId net, std::uint64_t seed) {
  Rng rng(seed);
  set::Strike strike;
  strike.node = net;
  strike.start = Picoseconds(rng.next_double_in(0.0, 1200.0));
  strike.width = Picoseconds(rng.next_double_in(50.0, 600.0));
  return strike;
}

TEST(KernelThreads, ConcurrentWorkersMatchSingleThreadedReference) {
  const CellLibrary lib = make_default_library();
  const auto netlist = testing::make_random_netlist(lib, 0xc0ffee);
  const auto context = sim::CompiledKernelContext::build(netlist);
  const Picoseconds capture(1400.0);

  // Reference results, computed sequentially on a private simulator.
  const sim::CompiledEventSim reference(netlist);
  std::vector<sim::CycleResult> expected;
  expected.reserve(netlist.num_nets());
  for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
    expected.push_back(reference.simulate_cycle(
        bits_for(netlist.primary_inputs().size(), n),
        bits_for(netlist.num_flip_flops(), ~n), capture,
        strike_for(NetId{n}, n * 7919)));
  }

  // Workers share the context and race over cone memoization: each
  // starts at a different net so first-touch of every cone is contended.
  constexpr std::size_t kWorkers = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      const sim::CompiledEventSim compiled(netlist, context);
      for (std::size_t step = 0; step < netlist.num_nets(); ++step) {
        const std::size_t n = (w * 13 + step) % netlist.num_nets();
        const auto result = compiled.simulate_cycle(
            bits_for(netlist.primary_inputs().size(), n),
            bits_for(netlist.num_flip_flops(), ~n), capture,
            strike_for(NetId{n}, n * 7919));
        if (result.latched_d != expected[n].latched_d ||
            result.golden_d != expected[n].golden_d ||
            result.struck_po != expected[n].struck_po ||
            result.aperture_violation != expected[n].aperture_violation) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KernelThreads, GoldenCacheIsPrivatePerSimulator) {
  const CellLibrary lib = make_default_library();
  const auto netlist = testing::make_random_netlist(lib, 0xfeed);
  const auto context = sim::CompiledKernelContext::build(netlist);

  // Concurrent golden evaluation with per-thread caches: hammering the
  // same stimuli from many threads must not cross-pollinate cache state.
  constexpr std::size_t kWorkers = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      const sim::CompiledEventSim compiled(netlist, context);
      for (int round = 0; round < 64; ++round) {
        const auto pis =
            bits_for(netlist.primary_inputs().size(), round % 4);
        const auto ffs = bits_for(netlist.num_flip_flops(), round % 4);
        (void)compiled.golden_eval(pis, ffs);
      }
      // 4 distinct stimuli, 64 lookups: the private cache must have
      // misses exactly on first sight and hits everywhere else.
      if (compiled.golden_cache_misses() != 4 ||
          compiled.golden_cache_hits() != 60) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace cwsp
