#include "sim/digital_waveform.hpp"

#include <gtest/gtest.h>

namespace cwsp::sim {
namespace {

TEST(DigitalWaveform, ConstantValue) {
  const DigitalWaveform w(true);
  EXPECT_TRUE(w.value_at(0.0));
  EXPECT_TRUE(w.value_at(1000.0));
  EXPECT_TRUE(w.final_value());
  EXPECT_TRUE(w.is_constant());
}

TEST(DigitalWaveform, XorPulseInvertsWindow) {
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 200.0);
  EXPECT_FALSE(w.value_at(50.0));
  EXPECT_TRUE(w.value_at(100.0));
  EXPECT_TRUE(w.value_at(150.0));
  EXPECT_FALSE(w.value_at(200.0));
  EXPECT_FALSE(w.final_value());
}

TEST(DigitalWaveform, OverlappingPulsesCancel) {
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 200.0);
  w.xor_pulse(100.0, 200.0);  // identical pulse cancels
  EXPECT_TRUE(w.is_constant());
}

TEST(DigitalWaveform, AdjacentPulsesMerge) {
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 200.0);
  w.xor_pulse(200.0, 300.0);  // toggles at 200 cancel
  EXPECT_EQ(w.transitions().size(), 2u);
  EXPECT_TRUE(w.value_at(150.0));
  EXPECT_TRUE(w.value_at(250.0));
  EXPECT_FALSE(w.value_at(350.0));
}

TEST(DigitalWaveform, ZeroWidthPulseIsNoop) {
  DigitalWaveform w(true);
  w.xor_pulse(50.0, 50.0);
  EXPECT_TRUE(w.is_constant());
}

TEST(DigitalWaveform, ZeroWidthPulseLeavesExistingTransitionsIntact) {
  // Regression: a degenerate t0 == t1 pulse must not perturb a waveform
  // that already toggles — including when it lands exactly on an existing
  // transition time (where a naive insert-two-toggles implementation
  // would cancel the real edge).
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 200.0);
  const std::vector<double> before = w.transitions();
  w.xor_pulse(150.0, 150.0);  // inside the pulse
  EXPECT_EQ(w.transitions(), before);
  w.xor_pulse(100.0, 100.0);  // exactly on an edge
  EXPECT_EQ(w.transitions(), before);
  w.xor_pulse(300.0, 300.0);  // after the last edge
  EXPECT_EQ(w.transitions(), before);
  EXPECT_FALSE(w.initial());
}

TEST(DigitalWaveform, InertialFilterKillsNarrowPulse) {
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 108.0);  // 8 ps pulse
  w.inertial_filter(10.0);
  EXPECT_TRUE(w.is_constant());
}

TEST(DigitalWaveform, InertialFilterKeepsWidePulse) {
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 150.0);
  w.inertial_filter(10.0);
  EXPECT_EQ(w.transitions().size(), 2u);
}

TEST(DigitalWaveform, InertialFilterCascades) {
  // Two wide pulses separated by a narrow gap: the gap is filtered, the
  // merged pulse survives.
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 150.0);
  w.xor_pulse(155.0, 210.0);  // 5 ps gap at level 0
  w.inertial_filter(10.0);
  EXPECT_EQ(w.transitions().size(), 2u);
  EXPECT_TRUE(w.value_at(152.0));  // gap removed
  EXPECT_FALSE(w.value_at(250.0));
}

TEST(DigitalWaveform, HasTransitionIn) {
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 200.0);
  EXPECT_TRUE(w.has_transition_in(90.0, 110.0));
  EXPECT_TRUE(w.has_transition_in(200.0, 200.0));
  EXPECT_FALSE(w.has_transition_in(110.0, 190.0));
  EXPECT_FALSE(w.has_transition_in(210.0, 300.0));
}

TEST(DigitalWaveform, FinalValueWithOddToggles) {
  DigitalWaveform w(false);
  w.set_transitions({10.0, 20.0, 30.0});
  EXPECT_TRUE(w.final_value());
  EXPECT_FALSE(w.value_at(5.0));
  EXPECT_TRUE(w.value_at(15.0));
  EXPECT_FALSE(w.value_at(25.0));
  EXPECT_TRUE(w.value_at(35.0));
}

TEST(DigitalWaveform, UnsortedTransitionsRejected) {
  DigitalWaveform w(false);
  EXPECT_THROW(w.set_transitions({20.0, 10.0}), Error);
}

}  // namespace
}  // namespace cwsp::sim
