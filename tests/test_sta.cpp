#include "sta/sta.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp {
namespace {

class StaTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(StaTest, SingleInverterChainDelayAccumulates) {
  Netlist n(lib_, "chain");
  NetId prev = n.add_primary_input("in");
  const int kStages = 5;
  for (int i = 0; i < kStages; ++i) {
    const GateId g = n.add_gate(lib_.cell_for(CellKind::kInv), {prev},
                                "n" + std::to_string(i));
    prev = n.gate(g).output;
  }
  n.mark_primary_output(prev);

  const auto r = run_sta(n);
  // Every stage drives exactly the same load (one INV pin + wire) except
  // the last (PO only, zero load); delays must therefore be equal for the
  // first kStages-1 and smaller for the last.
  const Cell& inv = lib_.cell(lib_.cell_for(CellKind::kInv));
  const double inner_load = inv.input_capacitance().value() +
                            lib_.wire_capacitance_per_fanout().value();
  const double inner_delay =
      inv.intrinsic_delay().value() +
      inv.drive_resistance().value() * inner_load;
  const double last_delay = inv.intrinsic_delay().value();
  EXPECT_NEAR(r.dmax.value(), (kStages - 1) * inner_delay + last_delay,
              1e-9);
  EXPECT_NEAR(r.dmin.value(), r.dmax.value(), 1e-9);  // single path
}

TEST_F(StaTest, DmaxAndDminDiverge) {
  // in ---INV---------------------> y1 (short path)
  // in ---INV-INV-INV-INV-INV-----> y2 (long path)
  Netlist n(lib_, "diverge");
  const NetId in = n.add_primary_input("in");
  const GateId s = n.add_gate(lib_.cell_for(CellKind::kInv), {in}, "short");
  n.mark_primary_output(n.gate(s).output);
  NetId prev = in;
  for (int i = 0; i < 5; ++i) {
    const GateId g = n.add_gate(lib_.cell_for(CellKind::kInv), {prev},
                                "l" + std::to_string(i));
    prev = n.gate(g).output;
  }
  n.mark_primary_output(prev);

  const auto r = run_sta(n);
  EXPECT_LT(r.dmin.value(), r.dmax.value());
  EXPECT_EQ(r.dmax_endpoint, prev);
  EXPECT_EQ(r.dmin_endpoint, n.gate(s).output);
}

TEST_F(StaTest, FlipFlopBoundariesAreTimingSources) {
  // PI -> INV -> DFF -> INV -> PO: two separate combinational paths.
  Netlist n(lib_, "regs");
  const NetId in = n.add_primary_input("in");
  const GateId g1 = n.add_gate(lib_.cell_for(CellKind::kInv), {in}, "d");
  const FlipFlopId ff = n.add_flip_flop(n.gate(g1).output, "q");
  const GateId g2 =
      n.add_gate(lib_.cell_for(CellKind::kInv), {n.flip_flop(ff).q}, "y");
  n.mark_primary_output(n.gate(g2).output);

  const auto r = run_sta(n);
  // Dmax is a single-gate delay, not the sum across the FF.
  const Cell& inv = lib_.cell(lib_.cell_for(CellKind::kInv));
  EXPECT_LT(r.dmax.value(), 2.0 * inv.delay(Femtofarads(5.0)).value());
  // The Q net starts at t=0.
  EXPECT_DOUBLE_EQ(r.arrivals[n.flip_flop(ff).q.index()].max_ps, 0.0);
}

TEST_F(StaTest, ReconvergentFanout) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
t1 = NOT(a)
t2 = AND(a, t1)
t3 = OR(t2, t1)
y  = XOR(t3, t2)
)",
                                    lib_);
  const auto r = run_sta(n);
  EXPECT_GT(r.dmax.value(), 0.0);
  EXPECT_GT(r.dmax.value(), r.dmin.value());
  // Critical path must start at a source and end at the endpoint.
  ASSERT_FALSE(r.critical_path.empty());
  EXPECT_EQ(r.critical_path.back(), r.dmax_endpoint);
  const Net& head = n.net(r.critical_path.front());
  EXPECT_EQ(head.driver_kind, DriverKind::kPrimaryInput);
}

TEST_F(StaTest, CriticalPathArrivalsMonotone) {
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
t1 = NAND(a, b)
t2 = NOR(t1, a)
t3 = XOR(t2, t1)
y  = AND(t3, b)
)",
                                    lib_);
  const auto r = run_sta(n);
  for (std::size_t i = 0; i + 1 < r.critical_path.size(); ++i) {
    EXPECT_LE(r.arrivals[r.critical_path[i].index()].max_ps,
              r.arrivals[r.critical_path[i + 1].index()].max_ps);
  }
}

TEST_F(StaTest, ConstantsDoNotCreatePaths) {
  Netlist n(lib_, "const_path");
  const NetId one = n.add_constant(true, "one");
  const NetId a = n.add_primary_input("a");
  const GateId g = n.add_gate(lib_.cell_for(CellKind::kAnd2), {a, one}, "y");
  n.mark_primary_output(n.gate(g).output);
  const auto r = run_sta(n);
  // Path exists from `a` only; constant must not produce a 0-delay path.
  EXPECT_GT(r.dmin.value(), 0.0);
}

TEST_F(StaTest, GateFedOnlyByConstantsIsUnreachable) {
  Netlist n(lib_, "const_only");
  const NetId one = n.add_constant(true, "one");
  const NetId zero = n.add_constant(false, "zero");
  const NetId a = n.add_primary_input("a");
  const GateId g =
      n.add_gate(lib_.cell_for(CellKind::kAnd2), {one, zero}, "dead");
  const GateId g2 = n.add_gate(lib_.cell_for(CellKind::kOr2),
                               {n.gate(g).output, a}, "y");
  n.mark_primary_output(n.gate(g2).output);
  const auto r = run_sta(n);
  EXPECT_FALSE(r.arrivals[n.gate(g).output.index()].reachable());
  EXPECT_TRUE(r.arrivals[n.gate(g2).output.index()].reachable());
}

TEST_F(StaTest, RegisterOutputsAreNotEndpoints) {
  // A PO tied straight to a FF Q must not create a zero-length path.
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(q)
t1 = NOT(a)
t2 = NOT(t1)
q  = DFF(t2)
)",
                                    lib_);
  const auto r = run_sta(n);
  EXPECT_GT(r.dmin.value(), 0.0);
  EXPECT_EQ(r.dmax_endpoint, *n.find_net("t2"));
}

TEST_F(StaTest, ComputeDmaxConvenienceMatches) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
t = NOT(a)
y = NOT(t)
)",
                                    lib_);
  EXPECT_DOUBLE_EQ(compute_dmax(n).value(), run_sta(n).dmax.value());
}

TEST_F(StaTest, TimingReportMentionsEndpoints) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(a)
)",
                                    lib_);
  const auto r = run_sta(n);
  const auto report = timing_report(n, r);
  EXPECT_NE(report.find("Dmax"), std::string::npos);
  EXPECT_NE(report.find("Dmin"), std::string::npos);
  EXPECT_NE(report.find('y'), std::string::npos);
}

TEST_F(StaTest, ProvenanceAuditFlagsCriticalPathFallbacks) {
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
t1 = NAND(a, b)
t2 = NAND(t1, b)
y = NAND(t2, a)
z = NOT(a)
)",
                                    lib_);
  const auto r = run_sta(n);

  // No fallback cells: clean audit.
  const auto clean = audit_timing_provenance(n, r, {});
  EXPECT_TRUE(clean.fallback_gates.empty());
  EXPECT_FALSE(clean.critical_path_tainted);

  // The INV is in the design but off the critical (NAND chain) path.
  const auto off_path = audit_timing_provenance(n, r, {"INV"});
  EXPECT_EQ(off_path.fallback_gates.size(), 1u);
  EXPECT_FALSE(off_path.critical_path_tainted);
  EXPECT_TRUE(off_path.tainted_critical_gates.empty());

  // NAND2 fallback taints every gate on the critical path.
  const auto tainted = audit_timing_provenance(n, r, {"NAND2"});
  EXPECT_EQ(tainted.fallback_gates.size(), 3u);
  EXPECT_TRUE(tainted.critical_path_tainted);
  EXPECT_FALSE(tainted.tainted_critical_gates.empty());

  // Unknown cell names are ignored, not an error.
  const auto unknown = audit_timing_provenance(n, r, {"NO_SUCH_CELL"});
  EXPECT_TRUE(unknown.fallback_gates.empty());
}

}  // namespace
}  // namespace cwsp
