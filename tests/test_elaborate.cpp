#include "cwsp/elaborate.hpp"

#include <gtest/gtest.h>

#include "sim/logic_sim.hpp"

namespace cwsp::core {
namespace {

class ElaborateTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();

  /// Clocks the checker until EQGLBF is armed (high), with q == cw == 0.
  static void arm(sim::LogicSim& sim, int num_ffs) {
    std::vector<bool> inputs(static_cast<std::size_t>(2 * num_ffs), false);
    for (int i = 0; i < 3; ++i) sim.step(inputs);
    sim.set_inputs(inputs);
    sim.evaluate();
  }
};

TEST_F(ElaborateTest, StructuralCounts) {
  const auto p = elaborate_protection(4, lib_);
  EXPECT_EQ(p.xnor_count, 4u);
  EXPECT_EQ(p.mux_count, 4u);
  // 4 EQ FFs + 4 DFF2 + DFF1.
  EXPECT_EQ(p.dff_count, 9u);
  EXPECT_EQ(p.netlist.num_flip_flops(), 9u);
  // PIs: q<i> + cw<i>; POs: cw_star<i> + eqglb + eqglbf.
  EXPECT_EQ(p.netlist.primary_inputs().size(), 8u);
  EXPECT_EQ(p.netlist.primary_outputs().size(), 6u);
}

TEST_F(ElaborateTest, MatchingInputsKeepEqglbHigh) {
  const auto p = elaborate_protection(3, lib_);
  sim::LogicSim sim(p.netlist);
  arm(sim, 3);
  EXPECT_TRUE(sim.value(*p.netlist.find_net("eqglb")));
}

TEST_F(ElaborateTest, MismatchPullsEqglbLow) {
  const auto p = elaborate_protection(3, lib_);
  sim::LogicSim sim(p.netlist);
  arm(sim, 3);
  // q1 = 1 while cw1 = 0: mismatch on FF 1.
  std::vector<bool> inputs(6, false);
  inputs[2] = true;  // q1 (inputs ordered q0, cw0, q1, cw1, q2, cw2)
  sim.step(inputs);  // EQ FFs capture the mismatch
  sim.set_inputs(inputs);
  sim.evaluate();
  EXPECT_FALSE(sim.value(*p.netlist.find_net("eqglb")));
}

TEST_F(ElaborateTest, EqglbfSuppressionForcesEqHigh) {
  const auto p = elaborate_protection(2, lib_);
  sim::LogicSim sim(p.netlist);
  // Do NOT arm: EQGLBF starts low, so even a mismatch must be ignored.
  std::vector<bool> inputs{true, false, false, false};  // q0 != cw0
  sim.step(inputs);
  sim.set_inputs(inputs);
  sim.evaluate();
  EXPECT_TRUE(sim.value(*p.netlist.find_net("eqglb")));
}

TEST_F(ElaborateTest, CwStarTracksCw) {
  const auto p = elaborate_protection(2, lib_);
  sim::LogicSim sim(p.netlist);
  // cw0 = 1, cw1 = 0 (inputs: q0, cw0, q1, cw1).
  sim.step({false, true, false, false});
  sim.evaluate();
  EXPECT_TRUE(sim.value(*p.netlist.find_net("cw_star0")));
  EXPECT_FALSE(sim.value(*p.netlist.find_net("cw_star1")));
}

TEST_F(ElaborateTest, WideDesignsUseChunkedTree) {
  const auto p = elaborate_protection(70, lib_);
  EXPECT_EQ(p.tree.levels, 2);
  EXPECT_EQ(p.tree.first_level_gates, 3);  // ceil(70/30)
  p.netlist.validate();

  // Semantics unchanged: a single mismatch among 70 pulls EQGLB low.
  sim::LogicSim sim(p.netlist);
  std::vector<bool> inputs(140, false);
  for (int i = 0; i < 3; ++i) sim.step(inputs);
  inputs[2 * 50] = true;  // q50 mismatch
  sim.step(inputs);
  sim.set_inputs(inputs);
  sim.evaluate();
  EXPECT_FALSE(sim.value(*p.netlist.find_net("eqglb")));
}

TEST_F(ElaborateTest, RejectsNonPositiveCount) {
  EXPECT_THROW(elaborate_protection(0, lib_), Error);
}

}  // namespace
}  // namespace cwsp::core
