#include "netlist/blif_writer.hpp"

#include <gtest/gtest.h>

#include "netlist/blif_parser.hpp"
#include "netlist_fuzz.hpp"
#include "sim/equivalence.hpp"

namespace cwsp {
namespace {

class BlifWriterTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(BlifWriterTest, RoundTripPreservesStructure) {
  const auto original = testing::make_random_netlist(lib_, 5);
  const auto text = to_blif_string(original);
  const auto reparsed = parse_blif_string(text, lib_);
  EXPECT_EQ(reparsed.num_gates(), original.num_gates());
  EXPECT_EQ(reparsed.num_flip_flops(), original.num_flip_flops());
  EXPECT_EQ(reparsed.primary_inputs().size(),
            original.primary_inputs().size());
  EXPECT_EQ(reparsed.primary_outputs().size(),
            original.primary_outputs().size());
}

TEST_F(BlifWriterTest, RoundTripPreservesBehaviour) {
  for (std::uint64_t seed : {11u, 29u, 47u}) {
    const auto original = testing::make_random_netlist(lib_, seed);
    const auto reparsed =
        parse_blif_string(to_blif_string(original), lib_);
    EquivalenceOptions options;
    options.random_vectors = 256;
    const auto r = check_equivalence(original, reparsed, options);
    EXPECT_TRUE(r.equivalent) << "seed " << seed;
  }
}

TEST_F(BlifWriterTest, ConstantsRoundTrip) {
  Netlist n(lib_, "consts");
  const NetId a = n.add_primary_input("a");
  const NetId one = n.add_constant(true, "hi");
  const NetId zero = n.add_constant(false, "lo");
  const GateId g1 = n.add_gate(lib_.cell_for(CellKind::kAnd2), {a, one}, "x");
  const GateId g2 = n.add_gate(lib_.cell_for(CellKind::kOr2),
                               {n.gate(g1).output, zero}, "y");
  n.mark_primary_output(n.gate(g2).output);
  n.validate();

  const auto reparsed = parse_blif_string(to_blif_string(n), lib_);
  EXPECT_TRUE(reparsed.net(*reparsed.find_net("hi")).constant_value);
  EXPECT_FALSE(reparsed.net(*reparsed.find_net("lo")).constant_value);
}

TEST_F(BlifWriterTest, LatchesRoundTrip) {
  Netlist n(lib_, "seq");
  const NetId a = n.add_primary_input("a");
  const GateId g = n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "d");
  const FlipFlopId ff = n.add_flip_flop(n.gate(g).output, "state");
  const GateId o = n.add_gate(lib_.cell_for(CellKind::kBuf),
                              {n.flip_flop(ff).q}, "y");
  n.mark_primary_output(n.gate(o).output);
  n.validate();

  const auto text = to_blif_string(n);
  EXPECT_NE(text.find(".latch d state re clk 0"), std::string::npos);
  const auto reparsed = parse_blif_string(text, lib_);
  EXPECT_EQ(reparsed.num_flip_flops(), 1u);
}

}  // namespace
}  // namespace cwsp
