// Chaos tests for the distributed campaign fabric (docs/fabric.md):
// worker crashes, stragglers past their lease, byzantine results,
// unreachable fleets and coordinator crash recovery — in every case the
// merged report must stay byte-identical to the single-host run, because
// the fabric validates, merges and re-aggregates through the exact code
// path the local engine uses.
//
// Failure modes are injected with FakeWorker, a raw TCP endpoint with a
// scripted pathology (accept-then-close, accept-and-stall,
// protocol-shaped garbage); healthy workers are real in-process Servers
// on ephemeral TCP ports.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "common/error.hpp"
#include "fabric/coordinator.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/session.hpp"

namespace cwsp::fabric {
namespace {

constexpr char kDesign[] =
    "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
    "t1 = NAND(a, b)\nt2 = XOR(t1, q)\nq = DFF(t2)\n";

/// A raw TCP endpoint with a scripted pathology.
class FakeWorker {
 public:
  enum class Mode {
    kCrash,    // accept, then immediately close (SIGKILLed daemon)
    kStall,    // accept, swallow everything, never respond (frozen daemon)
    kGarbage,  // answer every line with a protocol-shaped lie
  };

  explicit FakeWorker(Mode mode) : mode_(mode) {
    listen_fd_ = service::net::tcp_listen({"127.0.0.1", 0}, &port_);
    thread_ = std::thread([this] { loop(); });
  }

  ~FakeWorker() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    thread_.join();
    ::close(listen_fd_);
    for (const int fd : held_) ::close(fd);
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

 private:
  static bool read_request_line(int fd) {
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1) {
      if (c == '\n') return true;
    }
    return false;
  }

  void loop() {
    for (;;) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) return;
      switch (mode_) {
        case Mode::kCrash:
          ::close(client);
          break;
        case Mode::kStall:
          held_.push_back(client);
          break;
        case Mode::kGarbage: {
          // Well-formed envelope, garbage content: wrong fingerprint,
          // bogus strike line. Validation must reject it.
          const std::string lie =
              "{\"id\":\"x\",\"ok\":true,\"op\":\"shard_exec\","
              "\"shard_fp\":\"abad1dea\",\"strikes\":1,"
              "\"payload_kind\":\"strike-lines\","
              "\"payload\":\"strike idx=0 class=functional status=covered "
              "site=bogus cycle=0\\n\"}\n";
          while (read_request_line(client)) {
            if (::send(client, lie.data(), lie.size(), MSG_NOSIGNAL) < 0) {
              break;
            }
          }
          ::close(client);
          break;
        }
      }
    }
  }

  const Mode mode_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::vector<int> held_;
};

/// An honest in-process worker daemon on an ephemeral TCP port.
class RealWorker {
 public:
  explicit RealWorker(const CellLibrary& lib, std::string register_with = "",
                      double register_interval_ms = 100.0) {
    char tmpl[] = "/tmp/cwsp_fab_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    dir_ = tmpl;
    service::ServerOptions options;
    options.socket_path = dir_ + "/s";
    options.workers = 2;
    options.tcp_endpoint = "127.0.0.1:0";
    options.register_with = std::move(register_with);
    options.register_interval_ms = register_interval_ms;
    server_ = std::make_unique<service::Server>(std::move(options), lib);
    thread_ = std::thread([this] { server_->run(); });
    for (int i = 0; i < 400 && server_->tcp_port() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (server_->tcp_port() == 0) throw Error("worker TCP port never bound");
  }

  ~RealWorker() {
    server_->request_shutdown();
    thread_.join();
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server_->tcp_port());
  }

 private:
  std::string dir_;
  std::unique_ptr<service::Server> server_;
  std::thread thread_;
};

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = service::DesignSession::build("demo", kDesign, lib_);
    char tmpl[] = "/tmp/cwsp_fabj_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  service::CampaignSpec spec() const {
    service::CampaignSpec s;
    s.runs = 24;
    s.cycles = 10;
    s.seed = 7;
    s.jobs = 2;
    s.adversarial = true;
    s.json = true;
    return s;
  }

  /// The single-host reference every distributed report must match.
  std::string expected() const {
    return service::run_campaign(*session_, spec()).output;
  }

  /// Fast-failure fabric defaults so chaos tests converge quickly.
  FabricOptions base_options() const {
    FabricOptions options;
    options.dial.attempts = 2;
    options.dial.backoff_base_ms = 5.0;
    options.dial.backoff_cap_ms = 20.0;
    options.dial.connect_timeout_ms = 500.0;
    options.heartbeat_interval_ms = 100.0;
    options.heartbeat_timeout_ms = 800.0;
    options.worker_failure_limit = 2;
    return options;
  }

  FabricOutcome run(const FabricOptions& options) const {
    return run_distributed_campaign(*session_, kDesign, spec(), options);
  }

  std::string journal_path() const { return dir_ + "/fabric.journal"; }

  std::vector<std::string> journal_lines() const {
    std::ifstream in(journal_path());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  void write_journal_lines(const std::vector<std::string>& lines) const {
    std::ofstream out(journal_path(), std::ios::trunc);
    for (const std::string& line : lines) out << line << '\n';
  }

  /// Runs the whole campaign locally with a journal — the seed state for
  /// the recovery tests.
  FabricOutcome run_with_journal() const {
    FabricOptions options = base_options();
    options.journal_path = journal_path();
    return run(options);
  }

  CellLibrary lib_ = make_default_library();
  std::shared_ptr<const service::DesignSession> session_;
  std::string dir_;
};

TEST_F(FabricTest, DistributedReportIsByteIdenticalToSingleHost) {
  RealWorker w1(lib_);
  RealWorker w2(lib_);
  FabricOptions options = base_options();
  options.workers = {w1.endpoint(), w2.endpoint()};
  const FabricOutcome outcome = run(options);

  EXPECT_EQ(outcome.outcome.output, expected());
  EXPECT_EQ(outcome.stats.shards_remote, outcome.stats.shards_total);
  EXPECT_EQ(outcome.stats.shards_local, 0u);
  EXPECT_EQ(outcome.stats.rejected, 0u);
}

TEST_F(FabricTest, CrashedWorkerIsEvictedAndReportUnchanged) {
  RealWorker healthy(lib_);
  FakeWorker crash(FakeWorker::Mode::kCrash);
  FabricOptions options = base_options();
  options.workers = {crash.endpoint(), healthy.endpoint()};
  const FabricOutcome outcome = run(options);

  EXPECT_EQ(outcome.outcome.output, expected());
  EXPECT_GE(outcome.stats.workers_evicted, 1u);
  EXPECT_EQ(outcome.stats.shards_remote + outcome.stats.shards_local,
            outcome.stats.shards_total);
}

TEST_F(FabricTest, StragglerPastItsLeaseIsRedispatched) {
  RealWorker healthy(lib_);
  FakeWorker stall(FakeWorker::Mode::kStall);
  FabricOptions options = base_options();
  options.workers = {stall.endpoint(), healthy.endpoint()};
  options.lease_ms = 400.0;
  options.heartbeat_interval_ms = 0.0;  // isolate the lease path

  const FabricOutcome outcome = run(options);
  EXPECT_EQ(outcome.outcome.output, expected());
  EXPECT_GE(outcome.stats.redispatched, 1u);
}

TEST_F(FabricTest, GarbageResultsAreRejectedNotMerged) {
  RealWorker healthy(lib_);
  FakeWorker liar(FakeWorker::Mode::kGarbage);
  FabricOptions options = base_options();
  options.workers = {liar.endpoint(), healthy.endpoint()};
  options.heartbeat_interval_ms = 0.0;  // the liar "answers" pings too

  const FabricOutcome outcome = run(options);
  EXPECT_EQ(outcome.outcome.output, expected());
  EXPECT_GE(outcome.stats.rejected, 1u);
  EXPECT_GE(outcome.stats.workers_evicted, 1u);
}

TEST_F(FabricTest, UnreachableFleetDegradesToLocalExecution) {
  FabricOptions options = base_options();
  options.workers = {"127.0.0.1:1"};  // nothing listens on port 1
  options.dial.attempts = 1;

  const FabricOutcome outcome = run(options);
  EXPECT_EQ(outcome.outcome.output, expected());
  EXPECT_EQ(outcome.stats.shards_local, outcome.stats.shards_total);
  EXPECT_EQ(outcome.stats.workers_evicted, 1u);
}

TEST_F(FabricTest, CoordinatorRestartResumesCompletedShards) {
  // Deterministic coordinator crash: stop after two fresh shards.
  FabricOptions options = base_options();
  options.journal_path = journal_path();
  options.stop_after_shards = 2;
  const FabricOutcome first = run(options);
  EXPECT_EQ(first.outcome.status, campaign::CampaignStatus::kInterrupted);
  EXPECT_EQ(first.stats.shards_local, 2u);

  // The restarted coordinator resumes from the journal and only executes
  // what is missing.
  FabricOptions resume = base_options();
  resume.journal_path = journal_path();
  resume.resume = true;
  const FabricOutcome second = run(resume);
  EXPECT_EQ(second.outcome.output, expected());
  EXPECT_EQ(second.stats.shards_resumed, 2u);
  EXPECT_EQ(second.stats.shards_local,
            second.stats.shards_total - 2u);
}

TEST_F(FabricTest, TruncatedJournalTailReexecutesTheTornShard) {
  ASSERT_EQ(run_with_journal().outcome.output, expected());
  std::vector<std::string> lines = journal_lines();
  // Tear mid-shard: drop the completion marker and the last strike line.
  ASSERT_GE(lines.size(), 3u);
  lines.resize(lines.size() - 2);
  write_journal_lines(lines);

  FabricOptions options = base_options();
  options.journal_path = journal_path();
  options.resume = true;
  const FabricOutcome outcome = run(options);
  EXPECT_EQ(outcome.outcome.output, expected());
  EXPECT_EQ(outcome.stats.shards_resumed, outcome.stats.shards_total - 1u);
  EXPECT_EQ(outcome.stats.shards_local, 1u);
}

TEST_F(FabricTest, DuplicateShardMarkersResumeIdempotently) {
  ASSERT_EQ(run_with_journal().outcome.output, expected());
  std::vector<std::string> lines = journal_lines();
  for (const std::string& line : journal_lines()) {
    if (line.rfind("shard ", 0) == 0) {
      lines.push_back(line);  // replay every marker a second time
    }
  }
  write_journal_lines(lines);

  FabricOptions options = base_options();
  options.journal_path = journal_path();
  options.resume = true;
  const FabricOutcome outcome = run(options);
  EXPECT_EQ(outcome.outcome.output, expected());
  EXPECT_EQ(outcome.stats.shards_resumed, outcome.stats.shards_total);
  EXPECT_EQ(outcome.stats.shards_local, 0u);
  EXPECT_EQ(outcome.stats.shards_remote, 0u);
}

TEST_F(FabricTest, MismatchedShardMarkerFingerprintForcesReexecution) {
  ASSERT_EQ(run_with_journal().outcome.output, expected());
  std::vector<std::string> lines = journal_lines();
  bool corrupted = false;
  for (std::string& line : lines) {
    if (line.rfind("shard ", 0) != 0) continue;
    const std::size_t fp = line.find("fp=");
    ASSERT_NE(fp, std::string::npos);
    const std::size_t end = line.find(' ', fp);
    line.replace(fp, end - fp, "fp=deadbeef");
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  write_journal_lines(lines);

  FabricOptions options = base_options();
  options.journal_path = journal_path();
  options.resume = true;
  const FabricOutcome outcome = run(options);
  EXPECT_EQ(outcome.outcome.output, expected());
  EXPECT_EQ(outcome.stats.shards_resumed, outcome.stats.shards_total - 1u);
  EXPECT_EQ(outcome.stats.shards_local, 1u);
}

TEST_F(FabricTest, ForeignJournalIsRejectedOnResume) {
  ASSERT_EQ(run_with_journal().outcome.output, expected());
  FabricOptions options = base_options();
  options.journal_path = journal_path();
  options.resume = true;
  service::CampaignSpec other = spec();
  other.seed = 8;  // different plan → different campaign fingerprint
  EXPECT_THROW(
      (void)run_distributed_campaign(*session_, kDesign, other, options),
      Error);
}

TEST_F(FabricTest, DistributeRequestThroughServerFansOutToWorkers) {
  // A coordinator daemon whose campaign hook runs the fabric over its
  // registered workers, plus one worker daemon that self-registers.
  char tmpl[] = "/tmp/cwsp_fabc_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string coord_dir = tmpl;
  FabricStats observed;
  service::ServerOptions coordinator_options;
  coordinator_options.socket_path = coord_dir + "/s";
  coordinator_options.workers = 2;
  coordinator_options.distributed_campaign =
      [this, &observed](const service::DesignSession& session,
                        const std::string& design_text,
                        const service::CampaignSpec& campaign_spec,
                        const std::vector<std::string>& workers) {
        FabricOptions options = base_options();
        options.workers = workers;
        FabricOutcome outcome = run_distributed_campaign(
            session, design_text, campaign_spec, options);
        observed = outcome.stats;
        return outcome.outcome;
      };
  service::Server coordinator(std::move(coordinator_options), lib_);
  std::thread coordinator_thread([&] { coordinator.run(); });

  {
    RealWorker worker(lib_, coordinator.socket_path());
    // Wait for the worker's periodic registration to land.
    for (int i = 0; i < 400 && coordinator.registry().size() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(coordinator.registry().size(), 1u);

    service::Client client(coordinator.socket_path());
    client.send_line(
        "{\"id\":\"d\",\"op\":\"campaign\",\"distribute\":true,"
        "\"runs\":24,\"cycles\":10,\"seed\":7,\"jobs\":2,"
        "\"adversarial\":true,\"design\":\"" +
        service::json::escape(kDesign) + "\",\"design_name\":\"demo\"}");
    std::string line;
    ASSERT_TRUE(client.read_line(line));
    const service::json::Value response = service::json::parse(line);
    ASSERT_TRUE(response.boolean("ok", false))
        << response.text("error", "");
    EXPECT_EQ(response.text("payload", ""), expected());
    EXPECT_EQ(observed.shards_remote, observed.shards_total);
  }

  coordinator.request_shutdown();
  coordinator_thread.join();
}

}  // namespace
}  // namespace cwsp::fabric
