// Lint baseline files: record/parse round-trips, suppression semantics
// (count budgets, key stability), the parse-error exclusion, and
// malformed-input rejection.

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "lint/baseline.hpp"
#include "lint/report.hpp"

namespace cwsp::lint {
namespace {

Diagnostic make_diag(const std::string& rule, Severity severity,
                     std::vector<std::string> nets = {}) {
  Diagnostic d;
  d.rule_id = rule;
  d.severity = severity;
  d.net_names = std::move(nets);
  d.message = "message text is excluded from the key";
  return d;
}

LintReport make_report() {
  LintReport report;
  report.design = "demo";
  report.add(make_diag("rule-a", Severity::kError, {"n1"}));
  report.add(make_diag("rule-a", Severity::kError, {"n1"}));
  report.add(make_diag("rule-b", Severity::kWarning, {"n2", "n3"}));
  return report;
}

TEST(LintBaseline, FormatParseRoundTrip) {
  const LintReport report = make_report();
  const std::string text = format_baseline(report);
  const Baseline baseline = parse_baseline(text);

  ASSERT_EQ(baseline.entries.size(), 2u);
  // Entries are key-sorted; duplicate diagnostics fold into a count.
  EXPECT_EQ(baseline.entries[0].key, "demo|rule-a|n1");
  EXPECT_EQ(baseline.entries[0].count, 2u);
  EXPECT_EQ(baseline.entries[1].key, "demo|rule-b|n2,n3");
  EXPECT_EQ(baseline.entries[1].count, 1u);
}

TEST(LintBaseline, KeyIgnoresMessageAndNameOrder) {
  Diagnostic a = make_diag("rule-x", Severity::kError, {"p", "q"});
  Diagnostic b = make_diag("rule-x", Severity::kError, {"q", "p"});
  b.message = "a completely different message";
  EXPECT_EQ(baseline_key("d", a), baseline_key("d", b));
}

TEST(LintBaseline, ApplySuppressesUpToTheRecordedCount) {
  LintReport report = make_report();
  Baseline baseline = parse_baseline(format_baseline(report));

  // A fresh run with one MORE rule-a finding than the baseline holds.
  report.add(make_diag("rule-a", Severity::kError, {"n1"}));
  const std::size_t suppressed = apply_baseline(report, baseline);
  EXPECT_EQ(suppressed, 3u);
  ASSERT_EQ(report.diagnostics.size(), 1u);  // the new, unbaselined one
  EXPECT_EQ(report.diagnostics[0].rule_id, "rule-a");
}

TEST(LintBaseline, NewRuleIsNeverSuppressed) {
  LintReport report = make_report();
  const Baseline baseline = parse_baseline(format_baseline(report));

  LintReport fresh;
  fresh.design = "demo";
  fresh.add(make_diag("rule-new", Severity::kError, {"n1"}));
  EXPECT_EQ(apply_baseline(fresh, baseline), 0u);
  EXPECT_EQ(fresh.diagnostics.size(), 1u);
}

TEST(LintBaseline, ParseErrorsAreNeverRecordedOrSuppressed) {
  LintReport report;
  report.design = "demo";
  report.add(make_diag("parse-error", Severity::kError));
  const Baseline recorded = parse_baseline(format_baseline(report));
  EXPECT_TRUE(recorded.entries.size() == 0u);

  // Even a hand-forged entry must not suppress a parse failure.
  Baseline forged;
  forged.entries.push_back({baseline_key("demo", report.diagnostics[0]), 1});
  EXPECT_EQ(apply_baseline(report, forged), 0u);
  EXPECT_EQ(report.diagnostics.size(), 1u);
}

TEST(LintBaseline, EmptyReportRoundTrips) {
  LintReport report;
  report.design = "demo";
  const Baseline baseline = parse_baseline(format_baseline(report));
  EXPECT_TRUE(baseline.entries.empty());
}

TEST(LintBaseline, EscapedKeysRoundTrip) {
  LintReport report;
  report.design = "de\"mo\\path";
  report.add(make_diag("rule-a", Severity::kError, {"n\t1"}));
  const Baseline baseline = parse_baseline(format_baseline(report));
  ASSERT_EQ(baseline.entries.size(), 1u);
  EXPECT_EQ(baseline.entries[0].key, "de\"mo\\path|rule-a|n\t1");
}

TEST(LintBaseline, MalformedInputThrows) {
  EXPECT_THROW((void)parse_baseline(""), Error);
  EXPECT_THROW((void)parse_baseline("{}"), Error);  // missing schema
  EXPECT_THROW(
      (void)parse_baseline(R"({"schema": "other-schema", "entries": []})"),
      Error);
  EXPECT_THROW((void)parse_baseline(
                   R"({"schema": "cwsp-lint-baseline-v1", "bogus": 1})"),
               Error);
  EXPECT_THROW(
      (void)parse_baseline(
          R"({"schema": "cwsp-lint-baseline-v1", "entries": [{"key": "k"]})"),
      Error);
  // Duplicate keys are a corrupt baseline, not a larger budget.
  EXPECT_THROW((void)parse_baseline(
                   R"({"schema": "cwsp-lint-baseline-v1", "entries": [)"
                   R"({"key": "k", "count": 1}, {"key": "k", "count": 2}]})"),
               Error);
}

}  // namespace
}  // namespace cwsp::lint
