#include "set/glitch_model.hpp"

#include <gtest/gtest.h>

namespace cwsp::set {
namespace {

using namespace cwsp::literals;

class GlitchModelTest : public ::testing::Test {
 protected:
  GlitchModel model_;
};

TEST_F(GlitchModelTest, PaperCalibrationPoints) {
  EXPECT_NEAR(model_.glitch_width(100.0_fC).value(), 500.0, 25.0);
  EXPECT_NEAR(model_.glitch_width(150.0_fC).value(), 600.0, 30.0);
}

TEST_F(GlitchModelTest, ZeroChargeZeroWidth) {
  EXPECT_DOUBLE_EQ(model_.glitch_width(Femtocoulombs(0.0)).value(), 0.0);
}

TEST_F(GlitchModelTest, WidthMonotoneInCharge) {
  double prev = -1.0;
  for (double q = 20.0; q <= 200.0; q += 20.0) {
    const double w = model_.glitch_width(Femtocoulombs(q)).value();
    EXPECT_GE(w, prev - 1e-9) << "Q=" << q;
    prev = w;
  }
}

TEST_F(GlitchModelTest, InterpolationBetweenGridPoints) {
  // Width at 105 fC must lie between widths at 100 and 110 fC.
  const double w100 = model_.glitch_width(100.0_fC).value();
  const double w105 = model_.glitch_width(105.0_fC).value();
  const double w110 = model_.glitch_width(110.0_fC).value();
  EXPECT_GE(w105, w100 - 1e-9);
  EXPECT_LE(w105, w110 + 1e-9);
}

TEST_F(GlitchModelTest, InverseRoundTrips) {
  const auto q = model_.charge_for_width(500.0_ps);
  EXPECT_NEAR(model_.glitch_width(q).value(), 500.0, 5.0);
  // And the inverse of the paper's calibration is near 100 fC.
  EXPECT_NEAR(q.value(), 100.0, 15.0);
}

TEST_F(GlitchModelTest, CriticalChargePositive) {
  const auto qc = model_.critical_charge();
  EXPECT_GT(qc.value(), 1.0);
  EXPECT_LT(qc.value(), 100.0);
}

TEST_F(GlitchModelTest, WidthBeyondRangeRejected) {
  EXPECT_THROW((void)(model_.charge_for_width(Picoseconds(5000.0))), Error);
}

}  // namespace
}  // namespace cwsp::set
