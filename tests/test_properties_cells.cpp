// Property sweep over every cell kind in the default library.

#include <gtest/gtest.h>

#include "cell/library.hpp"

namespace cwsp {
namespace {

class CellProperties : public ::testing::TestWithParam<CellKind> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(CellProperties, EvaluateMatchesTruthTable) {
  const Cell& cell = lib_.cell(lib_.cell_for(GetParam()));
  const auto table = truth_table_for(GetParam(), cell.num_inputs());
  EXPECT_EQ(cell.truth_table(), table);
  for (unsigned bits = 0; bits < (1u << cell.num_inputs()); ++bits) {
    EXPECT_EQ(cell.evaluate(bits), ((table >> bits) & 1u) != 0) << bits;
  }
}

TEST_P(CellProperties, FunctionDependsOnEveryInput) {
  // No cell in the library has a redundant pin.
  const Cell& cell = lib_.cell(lib_.cell_for(GetParam()));
  for (int pin = 0; pin < cell.num_inputs(); ++pin) {
    bool sensitive = false;
    for (unsigned bits = 0; bits < (1u << cell.num_inputs()); ++bits) {
      if (cell.evaluate(bits) != cell.evaluate(bits ^ (1u << pin))) {
        sensitive = true;
        break;
      }
    }
    EXPECT_TRUE(sensitive) << cell.name() << " pin " << pin;
  }
}

TEST_P(CellProperties, PhysicalParametersSane) {
  const Cell& cell = lib_.cell(lib_.cell_for(GetParam()));
  EXPECT_GE(cell.devices().size(), 2u);
  EXPECT_GT(cell.active_area().value(), 0.0);
  EXPECT_GT(cell.intrinsic_delay().value(), 0.0);
  EXPECT_GT(cell.drive_resistance().value(), 0.0);
  EXPECT_GT(cell.input_capacitance().value(), 0.0);
  EXPECT_GT(cell.inertial_delay().value(), 0.0);
}

TEST_P(CellProperties, DelayMonotoneInLoad) {
  const Cell& cell = lib_.cell(lib_.cell_for(GetParam()));
  double prev = 0.0;
  for (double load = 0.0; load <= 20.0; load += 2.5) {
    const double d = cell.delay(Femtofarads(load)).value();
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST_P(CellProperties, InvertingCellsInvertAllOnes) {
  // NAND/NOR/INV/XNOR(odd): output at the all-ones input equals the
  // complement of the AND-family value; spot-check the inverting cells.
  const Cell& cell = lib_.cell(lib_.cell_for(GetParam()));
  const unsigned all_ones = (1u << cell.num_inputs()) - 1;
  switch (cell.kind()) {
    case CellKind::kInv:
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNand4:
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kNor4:
    case CellKind::kAoi21:
    case CellKind::kOai21:
      EXPECT_FALSE(cell.evaluate(all_ones)) << cell.name();
      break;
    default:
      break;  // non-inverting or parity cells
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CellProperties,
    ::testing::Values(CellKind::kInv, CellKind::kBuf, CellKind::kNand2,
                      CellKind::kNand3, CellKind::kNand4, CellKind::kNor2,
                      CellKind::kNor3, CellKind::kNor4, CellKind::kAnd2,
                      CellKind::kAnd3, CellKind::kAnd4, CellKind::kOr2,
                      CellKind::kOr3, CellKind::kOr4, CellKind::kXor2,
                      CellKind::kXnor2, CellKind::kMux2, CellKind::kAoi21,
                      CellKind::kOai21));

}  // namespace
}  // namespace cwsp
