#include "cell/cell.hpp"
#include "cell/library.hpp"

#include <gtest/gtest.h>

namespace cwsp {
namespace {

using namespace cwsp::literals;

TEST(Cell, TruthTablesOfBasicGates) {
  // INV
  EXPECT_EQ(truth_table_for(CellKind::kInv, 1), 0b01u);
  // BUF
  EXPECT_EQ(truth_table_for(CellKind::kBuf, 1), 0b10u);
  // NAND2: output 0 only for input 11.
  EXPECT_EQ(truth_table_for(CellKind::kNand2, 2), 0b0111u);
  // NOR2: output 1 only for input 00.
  EXPECT_EQ(truth_table_for(CellKind::kNor2, 2), 0b0001u);
  // AND2 / OR2 / XOR2 / XNOR2
  EXPECT_EQ(truth_table_for(CellKind::kAnd2, 2), 0b1000u);
  EXPECT_EQ(truth_table_for(CellKind::kOr2, 2), 0b1110u);
  EXPECT_EQ(truth_table_for(CellKind::kXor2, 2), 0b0110u);
  EXPECT_EQ(truth_table_for(CellKind::kXnor2, 2), 0b1001u);
}

TEST(Cell, MuxTruthTable) {
  const auto tt = truth_table_for(CellKind::kMux2, 3);
  // Inputs packed (d0, d1, sel) LSB-first: row = d0 | d1<<1 | sel<<2.
  for (unsigned d0 = 0; d0 <= 1; ++d0) {
    for (unsigned d1 = 0; d1 <= 1; ++d1) {
      for (unsigned sel = 0; sel <= 1; ++sel) {
        const unsigned row = d0 | (d1 << 1) | (sel << 2);
        const bool expected = sel ? d1 : d0;
        EXPECT_EQ(((tt >> row) & 1u) != 0, expected);
      }
    }
  }
}

TEST(Cell, AoiOaiTruthTables) {
  const auto aoi = truth_table_for(CellKind::kAoi21, 3);
  const auto oai = truth_table_for(CellKind::kOai21, 3);
  for (unsigned row = 0; row < 8; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
    EXPECT_EQ(((aoi >> row) & 1u) != 0, !((a && b) || c)) << row;
    EXPECT_EQ(((oai >> row) & 1u) != 0, !((a || b) && c)) << row;
  }
}

TEST(Cell, EvaluateMatchesTruthTable) {
  const CellLibrary lib = make_default_library();
  const Cell& nand2 = lib.cell(lib.cell_for(CellKind::kNand2));
  EXPECT_TRUE(nand2.evaluate(0b00));
  EXPECT_TRUE(nand2.evaluate(0b01));
  EXPECT_TRUE(nand2.evaluate(0b10));
  EXPECT_FALSE(nand2.evaluate(0b11));
}

TEST(Cell, DelayIsLinearInLoad) {
  const CellLibrary lib = make_default_library();
  const Cell& inv = lib.cell(lib.cell_for(CellKind::kInv));
  const auto d1 = inv.delay(1.0_fF);
  const auto d2 = inv.delay(2.0_fF);
  EXPECT_GT(d2, d1);
  EXPECT_NEAR((d2 - d1).value(), inv.drive_resistance().value(), 1e-12);
}

TEST(Cell, AreaFollowsTransistorComposition) {
  const CellLibrary lib = make_default_library();
  const Cell& inv = lib.cell(lib.cell_for(CellKind::kInv));
  const Cell& nand2 = lib.cell(lib.cell_for(CellKind::kNand2));
  const Cell& and2 = lib.cell(lib.cell_for(CellKind::kAnd2));
  // INV = 2 devices, NAND2 = 4, AND2 = NAND2 + INV = 6.
  EXPECT_DOUBLE_EQ(inv.active_area().value(),
                   (cal::kUnitActiveArea * 2.0).value());
  EXPECT_DOUBLE_EQ(nand2.active_area().value(),
                   (cal::kUnitActiveArea * 4.0).value());
  EXPECT_DOUBLE_EQ(and2.active_area().value(),
                   (cal::kUnitActiveArea * 6.0).value());
}

TEST(CellLibrary, LookupByNameAndKind) {
  const CellLibrary lib = make_default_library();
  ASSERT_TRUE(lib.find("NAND2").has_value());
  EXPECT_EQ(lib.cell(*lib.find("NAND2")).kind(), CellKind::kNand2);
  EXPECT_FALSE(lib.find("NAND17").has_value());
  for (CellKind kind :
       {CellKind::kInv, CellKind::kBuf, CellKind::kNand4, CellKind::kMux2,
        CellKind::kXor2, CellKind::kAoi21}) {
    EXPECT_EQ(lib.cell(lib.cell_for(kind)).kind(), kind);
  }
}

TEST(CellLibrary, FlipFlopModelsMatchPaper) {
  const CellLibrary lib = make_default_library();
  EXPECT_DOUBLE_EQ(lib.regular_ff().setup.value(), 40.0);
  EXPECT_DOUBLE_EQ(lib.regular_ff().clk_to_q.value(), 69.0);
  EXPECT_DOUBLE_EQ(lib.modified_ff().setup.value(), 38.0);
  EXPECT_DOUBLE_EQ(lib.modified_ff().clk_to_q.value(), 76.0);
}

TEST(CellLibrary, DuplicateCellNameRejected) {
  CellLibrary lib = make_default_library();
  EXPECT_THROW(
      lib.add_cell(Cell("INV", CellKind::kInv, 1,
                        truth_table_for(CellKind::kInv, 1),
                        cmos_gate_devices(1), Picoseconds(1), Kiloohms(1),
                        Femtofarads(1), Picoseconds(1))),
      Error);
}

TEST(Cell, InertialDelayPositiveForAllCells) {
  const CellLibrary lib = make_default_library();
  for (std::size_t i = 0; i < lib.size(); ++i) {
    EXPECT_GT(lib.cell(CellId{i}).inertial_delay().value(), 0.0);
  }
}

}  // namespace
}  // namespace cwsp
