#pragma once
// Random netlist generation for property-based cross-checks between the
// simulators. Produces valid, acyclic, fully-connected netlists with a
// mix of cell kinds, optional flip-flops and reconvergent fanout.

#include <vector>

#include "common/rng.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::testing {

struct FuzzOptions {
  int num_inputs = 4;
  int num_gates = 30;
  int num_flip_flops = 2;
  int num_outputs = 3;
};

inline Netlist make_random_netlist(const CellLibrary& library,
                                   std::uint64_t seed,
                                   const FuzzOptions& options = {}) {
  Rng rng(seed);
  Netlist netlist(library, "fuzz" + std::to_string(seed));

  std::vector<NetId> pool;
  for (int i = 0; i < options.num_inputs; ++i) {
    pool.push_back(netlist.add_primary_input("pi" + std::to_string(i)));
  }

  // Flip-flop Q nets join the pool as sources; D nets are wired at the
  // end from the final pool.
  std::vector<NetId> ff_q;
  for (int i = 0; i < options.num_flip_flops; ++i) {
    const NetId d = netlist.add_net("ffd" + std::to_string(i));
    const FlipFlopId ff =
        netlist.add_flip_flop_onto(d, netlist.add_net("ffq" + std::to_string(i)));
    ff_q.push_back(netlist.flip_flop(ff).q);
    pool.push_back(netlist.flip_flop(ff).q);
  }

  const CellKind kinds[] = {CellKind::kInv,   CellKind::kNand2,
                            CellKind::kNor2,  CellKind::kAnd2,
                            CellKind::kOr2,   CellKind::kXor2,
                            CellKind::kXnor2, CellKind::kNand3,
                            CellKind::kMux2,  CellKind::kAoi21};
  for (int g = 0; g < options.num_gates; ++g) {
    const CellKind kind = kinds[rng.next_below(std::size(kinds))];
    const int arity = input_count_for(kind);
    std::vector<NetId> inputs;
    for (int i = 0; i < arity; ++i) {
      inputs.push_back(pool[rng.next_below(pool.size())]);
    }
    const GateId gate = netlist.add_gate(library.cell_for(kind), inputs,
                                         "g" + std::to_string(g));
    pool.push_back(netlist.gate(gate).output);
  }

  // Wire flip-flop D inputs from late pool entries (acyclic by
  // construction: gates only consume earlier nets, and D nets are sinks).
  for (int i = 0; i < options.num_flip_flops; ++i) {
    const NetId d = *netlist.find_net("ffd" + std::to_string(i));
    const NetId src = pool[pool.size() - 1 - rng.next_below(
                                                 std::min<std::size_t>(
                                                     8, pool.size()))];
    netlist.add_gate_onto(library.cell_for(CellKind::kBuf), {src}, d);
  }

  // Primary outputs from the tail of the pool; then mark any dangling
  // nets as outputs too so the netlist validates.
  for (int i = 0; i < options.num_outputs && i < static_cast<int>(pool.size());
       ++i) {
    netlist.mark_primary_output(pool[pool.size() - 1 - i]);
  }
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const Net& net = netlist.net(NetId{i});
    if (net.fanout_gates.empty() && net.fanout_ffs.empty() &&
        !net.is_primary_output) {
      netlist.mark_primary_output(NetId{i});
    }
  }
  netlist.validate();
  return netlist;
}

}  // namespace cwsp::testing
