// Bounded priority job queue: backpressure, band ordering, batch
// extraction of coalescible duplicates, cancellation and shutdown
// draining — the admission-control core of the analysis service.

#include "service/job_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace cwsp::service {
namespace {

Job make_job(const std::string& id, int priority = 1,
             std::uint64_t batch_key = 0, std::uint64_t conn_id = 1) {
  Job job;
  job.id = id;
  job.conn_id = conn_id;
  job.priority = priority;
  job.batch_key = batch_key;
  job.op = "sleep";
  return job;
}

TEST(JobQueue, FifoWithinBand) {
  JobQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_job("a")));
  ASSERT_TRUE(queue.try_push(make_job("b")));
  EXPECT_EQ(queue.pop_batch().front().id, "a");
  EXPECT_EQ(queue.pop_batch().front().id, "b");
}

TEST(JobQueue, HighPriorityOvertakesNormalAndLow) {
  JobQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_job("low", 2)));
  ASSERT_TRUE(queue.try_push(make_job("normal", 1)));
  ASSERT_TRUE(queue.try_push(make_job("high", 0)));
  EXPECT_EQ(queue.pop_batch().front().id, "high");
  EXPECT_EQ(queue.pop_batch().front().id, "normal");
  EXPECT_EQ(queue.pop_batch().front().id, "low");
}

TEST(JobQueue, RefusesWhenFull) {
  JobQueue queue(2);
  EXPECT_TRUE(queue.try_push(make_job("a")));
  EXPECT_TRUE(queue.try_push(make_job("b")));
  EXPECT_FALSE(queue.try_push(make_job("c")));  // backpressure
  (void)queue.pop_batch();
  EXPECT_TRUE(queue.try_push(make_job("c")));  // slot freed
}

TEST(JobQueue, BatchesEqualKeysAcrossBands) {
  JobQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_job("a", 1, 42)));
  ASSERT_TRUE(queue.try_push(make_job("other", 1, 7)));
  ASSERT_TRUE(queue.try_push(make_job("b", 2, 42)));
  ASSERT_TRUE(queue.try_push(make_job("c", 0, 42)));

  // Front of the highest band is "c"; its duplicates ride along from
  // every band, front first.
  const std::vector<Job> batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, "c");
  EXPECT_EQ(batch[1].id, "a");
  EXPECT_EQ(batch[2].id, "b");
  EXPECT_EQ(queue.pop_batch().front().id, "other");
  EXPECT_EQ(queue.size(), 0u);
}

TEST(JobQueue, KeyZeroNeverCoalesces) {
  JobQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_job("a", 1, 0)));
  ASSERT_TRUE(queue.try_push(make_job("b", 1, 0)));
  EXPECT_EQ(queue.pop_batch().size(), 1u);
  EXPECT_EQ(queue.pop_batch().size(), 1u);
}

TEST(JobQueue, CancelRemovesQueuedJob) {
  JobQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_job("a", 1, 0, 3)));
  ASSERT_TRUE(queue.try_push(make_job("b", 1, 0, 3)));

  const auto cancelled = queue.cancel(3, "a");
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->id, "a");
  EXPECT_FALSE(queue.cancel(3, "a").has_value());   // already gone
  EXPECT_FALSE(queue.cancel(99, "b").has_value());  // wrong connection
  EXPECT_EQ(queue.pop_batch().front().id, "b");
}

TEST(JobQueue, DropConnectionDiscardsItsJobs) {
  JobQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_job("a", 1, 0, 1)));
  ASSERT_TRUE(queue.try_push(make_job("b", 1, 0, 2)));
  ASSERT_TRUE(queue.try_push(make_job("c", 2, 0, 1)));
  queue.drop_connection(1);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop_batch().front().id, "b");
}

TEST(JobQueue, ShutdownDrainsThenReleasesWorkers) {
  JobQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_job("a")));
  queue.shutdown();
  EXPECT_FALSE(queue.try_push(make_job("late")));
  // Queued work is still handed out after shutdown (graceful drain)...
  EXPECT_EQ(queue.pop_batch().front().id, "a");
  // ...and only an empty queue returns the sentinel that stops workers.
  EXPECT_TRUE(queue.pop_batch().empty());
}

TEST(JobQueue, PopBlocksUntilPush) {
  JobQueue queue(8);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto batch = queue.pop_batch();
    got.store(!batch.empty() && batch.front().id == "x");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(queue.try_push(make_job("x")));
  consumer.join();
  EXPECT_TRUE(got.load());
}

}  // namespace
}  // namespace cwsp::service
