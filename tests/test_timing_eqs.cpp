// Equations 2–6 of the paper, checked against its published numbers.

#include "cwsp/timing.hpp"

#include <gtest/gtest.h>

namespace cwsp::core {
namespace {

using namespace cwsp::literals;

TEST(ProtectionParams, DeltaMatchesPaper) {
  // Δ = 415 ps at Q=100 fC, 405 ps at 150 fC (from min-Dmax 1415/1605).
  EXPECT_DOUBLE_EQ(ProtectionParams::q100().protection_path_delta().value(),
                   415.0);
  EXPECT_DOUBLE_EQ(ProtectionParams::q150().protection_path_delta().value(),
                   405.0);
}

TEST(ProtectionParams, MinDmaxMatchesPaper) {
  EXPECT_DOUBLE_EQ(ProtectionParams::q100().min_dmax().value(), 1415.0);
  EXPECT_DOUBLE_EQ(ProtectionParams::q150().min_dmax().value(), 1605.0);
}

TEST(ProtectionParams, SegmentCountsMatchPaper) {
  const auto p100 = ProtectionParams::q100();
  EXPECT_EQ(p100.segments_delta, 4);
  EXPECT_EQ(p100.segments_clk_del, 8);
  const auto p150 = ProtectionParams::q150();
  EXPECT_EQ(p150.segments_delta, 4);
  EXPECT_EQ(p150.segments_clk_del, 10);
}

TEST(ProtectionParams, ClkDelDelayEq3) {
  const auto p = ProtectionParams::q100();
  // Eq. 3: 2δ + D_CWSP + D_MUX + T_SETUP_EQ = 1000 + 186 + 35 + 38.
  EXPECT_DOUBLE_EQ(p.clk_del_delay().value(), 1259.0);
}

TEST(ProtectionParams, CustomGlitchWidthKeepsQ100Envelope) {
  const auto p = ProtectionParams::for_glitch_width(300.0_ps);
  EXPECT_DOUBLE_EQ(p.delta.value(), 300.0);
  EXPECT_DOUBLE_EQ(p.per_ff_area.value(),
                   ProtectionParams::q100().per_ff_area.value());
  EXPECT_DOUBLE_EQ(p.protection_path_delta().value(), 415.0);
}

TEST(TimingEqs, MaxGlitchLimitedByDmin) {
  // Dmin/2 < (Dmax − Δ)/2 ⇒ Eq. 2 binds.
  const DesignTiming t{Picoseconds(3000.0), Picoseconds(800.0)};
  const auto p = ProtectionParams::q100();
  EXPECT_DOUBLE_EQ(max_protected_glitch(t, p).value(), 400.0);
}

TEST(TimingEqs, MaxGlitchLimitedByDmax) {
  // (Dmax − Δ)/2 < Dmin/2 ⇒ Eq. 5 binds.
  const DesignTiming t{Picoseconds(1215.0), Picoseconds(1100.0)};
  const auto p = ProtectionParams::q100();
  EXPECT_DOUBLE_EQ(max_protected_glitch(t, p).value(), 400.0);
}

TEST(TimingEqs, SkewReducesDminTerm) {
  const DesignTiming t{Picoseconds(3000.0), Picoseconds(800.0)};
  const auto p = ProtectionParams::q100();
  EXPECT_DOUBLE_EQ(max_protected_glitch(t, p, 100.0_ps).value(), 350.0);
  // Skew does not touch the Dmax-bound case.
  const DesignTiming t2{Picoseconds(1215.0), Picoseconds(2000.0)};
  EXPECT_DOUBLE_EQ(max_protected_glitch(t2, p, 100.0_ps).value(), 400.0);
}

TEST(TimingEqs, NeverNegative) {
  const auto p = ProtectionParams::q100();
  // Tiny Dmin with ample Dmax: the Dmin bound gives a small positive δ.
  const DesignTiming t{Picoseconds(1000.0), Picoseconds(50.0)};
  EXPECT_DOUBLE_EQ(max_protected_glitch(t, p).value(), 25.0);
  // Dmax below Δ would make Eq. 5 negative: clamp to zero.
  const DesignTiming t2{Picoseconds(300.0), Picoseconds(240.0)};
  EXPECT_DOUBLE_EQ(max_protected_glitch(t2, p).value(), 0.0);
}

TEST(TimingEqs, FullProtectionThresholds) {
  const auto p = ProtectionParams::q100();
  // Exactly at the paper's boundary: Dmax = 1415, Dmin = 0.8·Dmax = 1132.
  EXPECT_TRUE(supports_full_protection(
      timing_with_assumed_dmin(Picoseconds(1415.0)), p));
  EXPECT_FALSE(supports_full_protection(
      timing_with_assumed_dmin(Picoseconds(1414.0)), p));
}

TEST(TimingEqs, PeriodsReproducePaperTables) {
  const CellLibrary lib = make_default_library();
  // alu2 row of Tables 1/2.
  const Picoseconds dmax{1624.53789};
  EXPECT_NEAR(regular_clock_period(dmax, lib).value(), 1733.53789, 1e-9);
  EXPECT_NEAR(hardened_clock_period(dmax, lib).value(), 1745.03789, 1e-9);
}

TEST(TimingEqs, MinClockPeriodEq6RoundTrips) {
  const auto p = ProtectionParams::q100();
  const auto t_min = min_clock_period_for_delta(p);
  // Eq. 6 inverted at the minimum period returns the designed δ.
  EXPECT_NEAR(max_delta_for_period(t_min, p).value(), p.delta.value(), 1e-9);
  // A longer period tolerates a wider glitch.
  EXPECT_GT(max_delta_for_period(t_min + 200.0_ps, p).value(),
            p.delta.value());
}

TEST(TimingEqs, AssumedDminRatio) {
  const auto t = timing_with_assumed_dmin(Picoseconds(1000.0));
  EXPECT_DOUBLE_EQ(t.dmin.value(), 800.0);
}

}  // namespace
}  // namespace cwsp::core
