#include "set/strike_plan.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp::set {
namespace {

class StrikePlanTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q)
t1 = NAND(a, b)
t2 = NOT(t1)
q  = DFF(t2)
)",
                                        lib_);
};

TEST_F(StrikePlanTest, SitesAreGateOutputsAndFfQ) {
  const auto sites = strike_sites(netlist_);
  // t1, t2 (gate outputs) + q (FF output) = 3; PIs excluded.
  EXPECT_EQ(sites.size(), 3u);
  for (NetId site : sites) {
    const auto kind = netlist_.net(site).driver_kind;
    EXPECT_TRUE(kind == DriverKind::kGate || kind == DriverKind::kFlipFlop);
  }
}

TEST_F(StrikePlanTest, RandomStrikesRespectWindow) {
  Rng rng(5);
  const auto strikes =
      random_strikes(netlist_, 100, Picoseconds(300.0), Picoseconds(100.0),
                     Picoseconds(900.0), rng);
  EXPECT_EQ(strikes.size(), 100u);
  for (const auto& s : strikes) {
    EXPECT_GE(s.start.value(), 100.0);
    EXPECT_LT(s.start.value(), 900.0);
    EXPECT_DOUBLE_EQ(s.width.value(), 300.0);
    EXPECT_TRUE(s.node.valid());
  }
}

TEST_F(StrikePlanTest, RandomStrikesDeterministicPerSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a = random_strikes(netlist_, 20, Picoseconds(100.0),
                                Picoseconds(0.0), Picoseconds(500.0), rng_a);
  const auto b = random_strikes(netlist_, 20, Picoseconds(100.0),
                                Picoseconds(0.0), Picoseconds(500.0), rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_DOUBLE_EQ(a[i].start.value(), b[i].start.value());
  }
}

TEST_F(StrikePlanTest, ExhaustiveCoversEverySiteAndTime) {
  const std::vector<Picoseconds> times{Picoseconds(10.0), Picoseconds(20.0)};
  const auto strikes = exhaustive_strikes(netlist_, Picoseconds(50.0), times);
  EXPECT_EQ(strikes.size(), 3u * 2u);
}

TEST_F(StrikePlanTest, EmptyWindowRejected) {
  Rng rng(1);
  EXPECT_THROW(random_strikes(netlist_, 1, Picoseconds(10.0),
                              Picoseconds(100.0), Picoseconds(100.0), rng),
               Error);
}

// ----------------------------------------------------------- plan edges

TEST_F(StrikePlanTest, EmptyNetlistHasNoSitesAndRejectsStrikes) {
  const Netlist empty = parse_bench_string("INPUT(a)\nOUTPUT(a)\n", lib_);
  EXPECT_TRUE(strike_sites(empty).empty());
  Rng rng(1);
  EXPECT_THROW(random_strikes(empty, 1, Picoseconds(100.0), Picoseconds(0.0),
                              Picoseconds(500.0), rng),
               Error);
  // A zero-count plan over an empty netlist is fine (and empty)...
  StrikePlanOptions zero;
  zero.functional_strikes = 0;
  EXPECT_TRUE(build_strike_plan(empty, zero, 1).empty());
  // ...but asking for strikes with nowhere to put them is a config error.
  StrikePlanOptions some;
  some.functional_strikes = 5;
  EXPECT_THROW((void)build_strike_plan(empty, some, 1), Error);
}

TEST_F(StrikePlanTest, ProtectionPathStrikesRequireFlipFlops) {
  const Netlist comb = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", lib_);
  StrikePlanOptions options;
  options.functional_strikes = 0;
  options.protection_path_strikes = 3;
  EXPECT_THROW((void)build_strike_plan(comb, options, 1), Error);
}

TEST_F(StrikePlanTest, SingleFfDesignPlansEveryClass) {
  // Minimal sequential design: one gate, one flip-flop.
  const Netlist single = parse_bench_string(
      "INPUT(a)\nOUTPUT(q)\nt1 = NOT(a)\nq = DFF(t1)\n", lib_);
  StrikePlanOptions options;
  options.functional_strikes = 4;
  options.protection_path_strikes = 4;
  options.clock_edge_strikes = 2;
  options.out_of_envelope_strikes = 2;
  options.cycles_per_run = 6;
  const auto plan = build_strike_plan(single, options, 11);
  ASSERT_EQ(plan.size(), 12u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const PlannedStrike& p = plan.strikes[i];
    EXPECT_EQ(p.index, i);
    EXPECT_LT(p.cycle, options.cycles_per_run);
    if (p.klass == StrikeClass::kProtectionPath) {
      EXPECT_EQ(p.ff_index, 0u);  // the only FF
    } else {
      EXPECT_TRUE(p.strike.node.valid());
    }
    if (p.klass == StrikeClass::kOutOfEnvelope) {
      EXPECT_DOUBLE_EQ(p.strike.width.value(),
                       options.out_of_envelope_width.value());
    }
  }
}

TEST_F(StrikePlanTest, ClockEdgeStrikesSpanTheCaptureEdge) {
  StrikePlanOptions options;
  options.functional_strikes = 0;
  options.clock_edge_strikes = 20;
  options.clock_period = Picoseconds(2000.0);
  options.glitch_width = Picoseconds(400.0);
  const auto plan = build_strike_plan(netlist_, options, 4);
  ASSERT_EQ(plan.size(), 20u);
  for (const PlannedStrike& p : plan.strikes) {
    EXPECT_EQ(p.klass, StrikeClass::kClockEdge);
    // Pulse [start, start+width) must contain the capture edge at the
    // period boundary.
    EXPECT_LT(p.strike.start.value(), options.clock_period.value());
    EXPECT_GT(p.strike.start.value() + p.strike.width.value(),
              options.clock_period.value());
  }
}

TEST_F(StrikePlanTest, PlanDeterministicPerSeed) {
  StrikePlanOptions options;
  options.functional_strikes = 10;
  options.clock_edge_strikes = 5;
  const auto a = build_strike_plan(netlist_, options, 19);
  const auto b = build_strike_plan(netlist_, options, 19);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.strikes[i].strike.node, b.strikes[i].strike.node);
    EXPECT_DOUBLE_EQ(a.strikes[i].strike.start.value(),
                     b.strikes[i].strike.start.value());
    EXPECT_EQ(a.strikes[i].cycle, b.strikes[i].cycle);
  }
}

TEST_F(StrikePlanTest, ShardRoundTripIsAnExactPartition) {
  StrikePlanOptions options;
  options.functional_strikes = 13;  // not divisible by 4
  const auto plan = build_strike_plan(netlist_, options, 2);
  const auto shards = shard_plan(plan, 4);
  ASSERT_EQ(shards.size(), 4u);
  std::vector<PlannedStrike> merged;
  for (const StrikePlan& shard : shards) {
    // Balanced: sizes differ by at most one.
    EXPECT_GE(shard.size(), 3u);
    EXPECT_LE(shard.size(), 4u);
    merged.insert(merged.end(), shard.strikes.begin(), shard.strikes.end());
  }
  // Concatenation reproduces the plan exactly: no duplication, no loss,
  // original indices preserved.
  ASSERT_EQ(merged.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(merged[i].index, i);
    EXPECT_EQ(merged[i].strike.node, plan.strikes[i].strike.node);
    EXPECT_DOUBLE_EQ(merged[i].strike.start.value(),
                     plan.strikes[i].strike.start.value());
  }
}

TEST_F(StrikePlanTest, ShardDegenerateCounts) {
  StrikePlanOptions options;
  options.functional_strikes = 3;
  const auto plan = build_strike_plan(netlist_, options, 2);
  // One shard: identity.
  const auto one = shard_plan(plan, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].size(), plan.size());
  // More shards than strikes: trailing shards are empty, nothing lost.
  const auto many = shard_plan(plan, 5);
  ASSERT_EQ(many.size(), 5u);
  std::size_t total = 0;
  for (const auto& shard : many) total += shard.size();
  EXPECT_EQ(total, plan.size());
  EXPECT_THROW((void)shard_plan(plan, 0), Error);
}

}  // namespace
}  // namespace cwsp::set
