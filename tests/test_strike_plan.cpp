#include "set/strike_plan.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp::set {
namespace {

class StrikePlanTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q)
t1 = NAND(a, b)
t2 = NOT(t1)
q  = DFF(t2)
)",
                                        lib_);
};

TEST_F(StrikePlanTest, SitesAreGateOutputsAndFfQ) {
  const auto sites = strike_sites(netlist_);
  // t1, t2 (gate outputs) + q (FF output) = 3; PIs excluded.
  EXPECT_EQ(sites.size(), 3u);
  for (NetId site : sites) {
    const auto kind = netlist_.net(site).driver_kind;
    EXPECT_TRUE(kind == DriverKind::kGate || kind == DriverKind::kFlipFlop);
  }
}

TEST_F(StrikePlanTest, RandomStrikesRespectWindow) {
  Rng rng(5);
  const auto strikes =
      random_strikes(netlist_, 100, Picoseconds(300.0), Picoseconds(100.0),
                     Picoseconds(900.0), rng);
  EXPECT_EQ(strikes.size(), 100u);
  for (const auto& s : strikes) {
    EXPECT_GE(s.start.value(), 100.0);
    EXPECT_LT(s.start.value(), 900.0);
    EXPECT_DOUBLE_EQ(s.width.value(), 300.0);
    EXPECT_TRUE(s.node.valid());
  }
}

TEST_F(StrikePlanTest, RandomStrikesDeterministicPerSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a = random_strikes(netlist_, 20, Picoseconds(100.0),
                                Picoseconds(0.0), Picoseconds(500.0), rng_a);
  const auto b = random_strikes(netlist_, 20, Picoseconds(100.0),
                                Picoseconds(0.0), Picoseconds(500.0), rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_DOUBLE_EQ(a[i].start.value(), b[i].start.value());
  }
}

TEST_F(StrikePlanTest, ExhaustiveCoversEverySiteAndTime) {
  const std::vector<Picoseconds> times{Picoseconds(10.0), Picoseconds(20.0)};
  const auto strikes = exhaustive_strikes(netlist_, Picoseconds(50.0), times);
  EXPECT_EQ(strikes.size(), 3u * 2u);
}

TEST_F(StrikePlanTest, EmptyWindowRejected) {
  Rng rng(1);
  EXPECT_THROW(random_strikes(netlist_, 1, Picoseconds(10.0),
                              Picoseconds(100.0), Picoseconds(100.0), rng),
               Error);
}

}  // namespace
}  // namespace cwsp::set
