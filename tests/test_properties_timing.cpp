// Property sweeps over the paper's timing equations (Eqs. 2–6).

#include <gtest/gtest.h>

#include "cwsp/timing.hpp"

namespace cwsp::core {
namespace {

struct TimingCase {
  double dmax_ps;
  double ratio;    // dmin = ratio · dmax
  double skew_ps;
};

class TimingProperties : public ::testing::TestWithParam<TimingCase> {};

TEST_P(TimingProperties, GlitchWidthInvariants) {
  const auto& tc = GetParam();
  const DesignTiming timing{Picoseconds(tc.dmax_ps),
                            Picoseconds(tc.dmax_ps * tc.ratio)};
  for (const auto& params :
       {ProtectionParams::q100(), ProtectionParams::q150()}) {
    const auto glitch =
        max_protected_glitch(timing, params, Picoseconds(tc.skew_ps));

    // Non-negative, and bounded by both constraints.
    EXPECT_GE(glitch.value(), 0.0);
    EXPECT_LE(glitch.value(),
              std::max(0.0, (timing.dmin.value() - tc.skew_ps) / 2.0) + 1e-9);
    EXPECT_LE(glitch.value(),
              std::max(0.0, (timing.dmax.value() -
                             params.protection_path_delta().value()) /
                                2.0) +
                  1e-9);

    // Skew can only reduce the protected width.
    const auto no_skew = max_protected_glitch(timing, params);
    EXPECT_LE(glitch.value(), no_skew.value() + 1e-9);

    // Monotone in Dmax (fixed Dmin).
    const DesignTiming larger{Picoseconds(tc.dmax_ps + 100.0), timing.dmin};
    EXPECT_GE(max_protected_glitch(larger, params).value(),
              no_skew.value() - 1e-9);

    // Consistency of the full-protection predicate.
    EXPECT_EQ(supports_full_protection(timing, params,
                                       Picoseconds(tc.skew_ps)),
              glitch >= params.delta);
  }
}

TEST_P(TimingProperties, Eq6RoundTrip) {
  const auto& tc = GetParam();
  for (const auto& params :
       {ProtectionParams::q100(), ProtectionParams::q150()}) {
    // For any clock period, re-deriving the period from the returned δ
    // must reproduce it (when δ > 0).
    const Picoseconds period{tc.dmax_ps + 200.0};
    const auto delta = max_delta_for_period(period, params);
    if (delta.value() > 0.0) {
      ProtectionParams custom = params;
      custom.delta = delta;
      EXPECT_NEAR(min_clock_period_for_delta(custom).value(), period.value(),
                  1e-9);
    }
  }
}

TEST_P(TimingProperties, HardenedPeriodExceedsRegularByConstant) {
  const auto& tc = GetParam();
  const CellLibrary lib = make_default_library();
  const Picoseconds dmax{tc.dmax_ps};
  EXPECT_NEAR(hardened_clock_period(dmax, lib).value() -
                  regular_clock_period(dmax, lib).value(),
              cal::kHardeningDelayPenalty.value(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimingProperties,
    ::testing::Values(TimingCase{600.0, 0.8, 0.0},
                      TimingCase{1000.0, 0.8, 0.0},
                      TimingCase{1415.0, 0.8, 0.0},
                      TimingCase{1624.5, 0.8, 0.0},
                      TimingCase{2069.5, 0.8, 50.0},
                      TimingCase{2900.0, 0.5, 0.0},
                      TimingCase{5141.1, 0.8, 200.0},
                      TimingCase{800.0, 1.0, 0.0},
                      TimingCase{1200.0, 0.3, 0.0},
                      TimingCase{3000.0, 0.9, 400.0}));

}  // namespace
}  // namespace cwsp::core
