#include "spice/solver.hpp"

#include <gtest/gtest.h>

namespace cwsp::spice {
namespace {

TEST(Solver, SolvesIdentity) {
  DenseMatrix a(3);
  a.at(0, 0) = a.at(1, 1) = a.at(2, 2) = 1.0;
  const auto x = solve_linear_system(std::move(a), {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Solver, Solves2x2) {
  DenseMatrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_linear_system(std::move(a), {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solver, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  DenseMatrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve_linear_system(std::move(a), {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solver, SingularRejected) {
  DenseMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW(solve_linear_system(std::move(a), {1.0, 2.0}), Error);
}

TEST(Solver, LargerRandomSystemRoundTrips) {
  // Build a diagonally dominant 10x10 system with a known solution.
  const std::size_t n = 10;
  DenseMatrix a(n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = static_cast<double>(i) - 4.5;
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = (i == j) ? 20.0 : 1.0 / (1.0 + static_cast<double>(i + j));
    }
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
  }
  const auto x = solve_linear_system(std::move(a), std::move(b));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Solver, SizeMismatchRejected) {
  DenseMatrix a(2);
  a.at(0, 0) = a.at(1, 1) = 1.0;
  EXPECT_THROW(solve_linear_system(std::move(a), {1.0}), Error);
}

}  // namespace
}  // namespace cwsp::spice
