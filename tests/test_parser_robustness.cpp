// Table-driven robustness sweep: every malformed input must produce a
// cwsp::Error (never a crash, hang or silently wrong netlist).

#include <gtest/gtest.h>

#include "cell/library_io.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/blif_parser.hpp"

namespace cwsp {
namespace {

class BenchRejects : public ::testing::TestWithParam<const char*> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(BenchRejects, ThrowsError) {
  EXPECT_THROW(parse_bench_string(GetParam(), lib_), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BenchRejects,
    ::testing::Values(
        // Unclosed INPUT declaration.
        "INPUT(a\nOUTPUT(y)\ny = NOT(a)\n",
        // Assignment without '='.
        "INPUT(a)\nOUTPUT(y)\ny NOT(a)\n",
        // Missing closing paren on the RHS.
        "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n",
        // Zero-argument gate.
        "INPUT(a)\nOUTPUT(y)\ny = AND()\n",
        // DFF with two inputs.
        "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n",
        // MUX with wrong arity.
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(a, b)\n",
        // Output never defined.
        "INPUT(a)\nOUTPUT(ghost)\nx = NOT(a)\n",
        // Self-referential combinational definition.
        "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n",
        // Combinational loop through two gates.
        "INPUT(a)\nOUTPUT(y)\nx = NOT(y)\ny = NOT(x)\n",
        // Redefinition of a primary input.
        "INPUT(a)\nOUTPUT(y)\na = NOT(a)\ny = BUFF(a)\n",
        // Unknown constant alias.
        "INPUT(a)\nOUTPUT(y)\nz = VCC\ny = OR(a, z)\n"));

class BlifRejects : public ::testing::TestWithParam<const char*> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(BlifRejects, ThrowsError) {
  EXPECT_THROW(parse_blif_string(GetParam(), lib_), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BlifRejects,
    ::testing::Values(
        // .gate without pin assignments.
        ".model m\n.inputs a\n.outputs y\n.gate INV a y\n.end\n",
        // .latch with one operand.
        ".model m\n.inputs a\n.outputs q\n.latch a\n.end\n",
        // Undefined net in output list.
        ".model m\n.inputs a\n.outputs ghost\n.gate INV a=a O=y\n.end\n",
        // Unsupported directive.
        ".model m\n.subckt adder a=a\n.end\n",
        // Pin/arity mismatch.
        ".model m\n.inputs a\n.outputs y\n.gate NAND2 a=a O=y\n.end\n"));

class LibraryRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(LibraryRejects, ThrowsError) {
  EXPECT_THROW(parse_library_string(GetParam()), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, LibraryRejects,
    ::testing::Values(
        // Not a library at all.
        "circuit foo { }",
        // Unbalanced braces.
        "library l { ff regular { setup 1 clkq 1 hold 1 area_units 1 "
        "dcap 1 rdrive 1 }",
        // Unknown top-level entry.
        "library l { frobnicate 3 }",
        // Empty input.
        ""));

}  // namespace
}  // namespace cwsp
