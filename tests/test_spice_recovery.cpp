// Pathological-circuit suite for the solver recovery ladder, adaptive
// stepping and graceful degradation (docs/minispice.md § "Recovery
// ladder"). Every case must complete without aborting the process:
// either the ladder recovers a solution (diagnostics say which rung) or
// the run degrades with converged=false and a populated failure reason.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cell/characterize.hpp"
#include "spice/circuit.hpp"
#include "spice/transient.hpp"
#include "spice/waveform.hpp"

namespace cwsp::spice {
namespace {

TEST(RecoveryLadder, FloatingNodeWithZeroGminRecoversViaGminStepping) {
  // A node reachable only through a capacitor has an all-zero DC row when
  // gmin = 0: structurally singular for the direct solve. The gmin rung
  // ramps a leak down over decades and accepts the 1e-12 mS floor.
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add_voltage_source("V1", a, kGround, SourceFunction::dc(1.0));
  c.add_capacitor("C1", a, b, Femtofarads(1.0));
  c.add_capacitor("C2", b, kGround, Femtofarads(1.0));

  TransientOptions options;
  options.gmin = 0.0;
  SolverDiagnostics diag;
  const auto v = try_solve_dc(c, options, diag);
  EXPECT_TRUE(diag.converged);
  EXPECT_FALSE(diag.exact);
  EXPECT_EQ(diag.deepest_rung, RecoveryRung::kGminStep);
  EXPECT_GE(diag.rung_attempts[static_cast<std::size_t>(
                RecoveryRung::kGminStep)],
            2u);
  EXPECT_TRUE(std::isfinite(v[static_cast<std::size_t>(b)]));

  // The transient itself is well-posed (capacitors conduct): the run
  // completes and every recorded sample is finite.
  options.t_stop_ps = 20.0;
  options.dt_ps = 1.0;
  const auto result = try_run_transient(c, options, {b});
  EXPECT_TRUE(result.diagnostics.converged);
  for (const auto& s : result.probe(b).samples()) {
    EXPECT_TRUE(std::isfinite(s.v));
  }
}

TEST(RecoveryLadder, ZeroCapacitanceResistorLoopRecovers) {
  // A resistor loop with no capacitance and no conductive path to ground
  // or any source: with gmin = 0 its MNA block is singular at DC and
  // stays singular in the transient (no capacitor companion conductance
  // ever appears). The gmin rung must carry both the DC point and every
  // step, and the recovered loop potentials settle to 0.
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  const int s = c.node("s");
  c.add_voltage_source("V1", s, kGround, SourceFunction::dc(1.0));
  c.add_resistor("Rload", s, kGround, Kiloohms(1.0));
  c.add_resistor("R1", a, b, Kiloohms(1.0));
  c.add_resistor("R2", b, a, Kiloohms(2.0));

  TransientOptions options;
  options.gmin = 0.0;
  options.t_stop_ps = 5.0;
  SolverDiagnostics diag;
  const auto v = try_solve_dc(c, options, diag);
  ASSERT_TRUE(diag.converged) << diag.failure;
  EXPECT_FALSE(diag.exact);
  EXPECT_EQ(diag.deepest_rung, RecoveryRung::kGminStep);
  EXPECT_NEAR(v[static_cast<std::size_t>(a)], 0.0, 1e-6);
  EXPECT_NEAR(v[static_cast<std::size_t>(b)], 0.0, 1e-6);

  const auto result = try_run_transient(c, options, {a, s});
  ASSERT_TRUE(result.diagnostics.converged) << result.diagnostics.failure;
  EXPECT_NEAR(result.final_voltages[static_cast<std::size_t>(s)], 1.0, 1e-6);
}

TEST(RecoveryLadder, RedundantParallelSourcesExhaustLadderGracefully) {
  // Two voltage sources forcing different values across the same node
  // pair are singular at every gmin and every source scale: the whole
  // ladder must run, fail, and report — never abort.
  Circuit c;
  const int n = c.node("n");
  c.add_voltage_source("V1", n, kGround, SourceFunction::dc(1.0));
  c.add_voltage_source("V2", n, kGround, SourceFunction::dc(0.5));
  c.add_resistor("R1", n, kGround, Kiloohms(1.0));

  TransientOptions options;
  options.t_stop_ps = 10.0;
  SolverDiagnostics diag;
  (void)try_solve_dc(c, options, diag);
  EXPECT_FALSE(diag.converged);
  EXPECT_FALSE(diag.failure.empty());
  for (std::size_t rung = 0; rung < diag.rung_attempts.size(); ++rung) {
    EXPECT_GE(diag.rung_attempts[rung], 1u) << "rung " << rung << " not tried";
  }

  // The throwing API surfaces the same verdict as a typed SolveError.
  EXPECT_THROW((void)run_transient(c, options, {n}), SolveError);
  // And the non-throwing transient reports instead of throwing.
  const auto result = try_run_transient(c, options, {n});
  EXPECT_FALSE(result.diagnostics.converged);
  EXPECT_FALSE(result.diagnostics.failure.empty());
}

TEST(RecoveryLadder, StiffRcCompletesDirectly) {
  // τ = R·C = 1e-3 ps with dt = 1 ps: three decades stiffer than the
  // step. Backward Euler is A-stable, so this must complete on the
  // direct path — no recovery, no rejected steps.
  Circuit c;
  const int in = c.node("in");
  const int m = c.node("m");
  c.add_voltage_source("V1", in, kGround,
                       SourceFunction::pulse(0.0, 1.0, 2.0, 1.0, 1e6, 1.0));
  c.add_resistor("R1", in, m, Kiloohms(0.01));
  c.add_capacitor("C1", m, kGround, Femtofarads(0.1));

  TransientOptions options;
  options.t_stop_ps = 20.0;
  options.dt_ps = 1.0;
  const auto result = run_transient(c, options, {m});
  EXPECT_TRUE(result.diagnostics.converged);
  EXPECT_TRUE(result.diagnostics.exact);
  EXPECT_EQ(result.diagnostics.rejected_steps, 0u);
  EXPECT_EQ(result.diagnostics.subdivided_steps, 0u);
  EXPECT_NEAR(result.final_voltages[static_cast<std::size_t>(m)], 1.0, 1e-6);
}

TEST(RecoveryLadder, DiodeOverflowRescuedByTighterClamp) {
  // A diode with a 5 mV emission slope and no linear extension overflows
  // exp() the moment Newton lands past ~0.71 V. With the damping clamp
  // opened to 10 V the direct solve jumps straight to the 5 V rail and
  // dies on Inf; the tight-clamp rung (limit/8) walks in safely.
  Circuit c;
  const int s = c.node("s");
  const int d = c.node("d");
  c.add_voltage_source("V1", s, kGround, SourceFunction::dc(5.0));
  c.add_resistor("R1", s, d, Kiloohms(1.0));
  DiodeParams params;
  params.n_vt = 0.005;
  params.v_linear = 10.0;  // defeat the linear extension
  c.add_diode("D1", d, kGround, params);

  TransientOptions options;
  options.v_step_limit = 10.0;
  SolverDiagnostics diag;
  const auto v = try_solve_dc(c, options, diag);
  ASSERT_TRUE(diag.converged) << diag.failure;
  EXPECT_FALSE(diag.exact);
  EXPECT_EQ(diag.deepest_rung, RecoveryRung::kTightClamp);
  // Forward drop of is=1e-12 mA, n·VT=5 mV at ~4.9 mA: ~0.146 V.
  EXPECT_NEAR(v[static_cast<std::size_t>(d)], 0.146, 0.02);
}

TEST(RecoveryLadder, DivergingTransientStepSubdivides) {
  // A current-source inrush into a weakly-held diode node: at the
  // nominal dt the undamped Newton iterate overshoots into exp()
  // overflow; halving dt strengthens the capacitor's companion
  // conductance until the step converges, then dt regrows.
  Circuit c;
  const int d = c.node("d");
  c.add_current_source("I1", kGround, d,
                       SourceFunction::pulse(0.0, 2.0, 5.0, 1.0, 1e6, 1.0));
  c.add_resistor("R1", d, kGround, Kiloohms(100.0));
  c.add_capacitor("C1", d, kGround, Femtofarads(0.05));
  DiodeParams params;
  params.n_vt = 0.005;
  params.v_linear = 10.0;
  c.add_diode("D1", d, kGround, params);

  TransientOptions options;
  options.t_stop_ps = 20.0;
  options.dt_ps = 1.0;
  options.v_step_limit = 50.0;  // defeat damping: force the overflow
  const auto result = try_run_transient(c, options, {d});
  ASSERT_TRUE(result.diagnostics.converged) << result.diagnostics.failure;
  EXPECT_FALSE(result.diagnostics.exact);
  EXPECT_GE(result.diagnostics.subdivided_steps, 1u);
  EXPECT_GE(result.diagnostics.rejected_steps, 1u);
  EXPECT_LT(result.diagnostics.min_dt_ps, options.dt_ps);
  // Samples stay on the nominal grid and finite.
  EXPECT_EQ(result.probe(d).size(), 21u);
  for (const auto& sample : result.probe(d).samples()) {
    EXPECT_TRUE(std::isfinite(sample.v));
  }
  // Final value: diode clamps the 2 mA at a ~0.14 V forward drop.
  EXPECT_NEAR(result.final_voltages[static_cast<std::size_t>(d)], 0.14, 0.05);
}

TEST(RecoveryLadder, SingleIterationBudgetRecoveredByGminContinuation) {
  // Even a one-iteration Newton budget is recoverable for this diode
  // circuit: gmin stepping carries the guess down the decades, acting as
  // a continuation method, so each attempt only needs one refinement.
  Circuit c;
  const int d = c.node("d");
  c.add_voltage_source("V1", d, kGround, SourceFunction::dc(1.0));
  const int m = c.node("m");
  c.add_resistor("R1", d, m, Kiloohms(1.0));
  c.add_diode("D1", m, kGround, DiodeParams{});

  TransientOptions options;
  options.max_newton_iterations = 1;
  SolverDiagnostics diag;
  const auto v = try_solve_dc(c, options, diag);
  ASSERT_TRUE(diag.converged) << diag.failure;
  EXPECT_FALSE(diag.exact);
  EXPECT_GE(diag.deepest_rung, RecoveryRung::kGminStep);
  EXPECT_TRUE(std::isfinite(v[static_cast<std::size_t>(m)]));
}

TEST(RecoveryLadder, PerpetualLteRejectionHitsDtFloorAndReports) {
  // With the LTE tolerance squeezed to (near) zero, every recovery
  // substep is rejected no matter how small dt gets: subdivision must
  // walk down to the dt floor and give up with a recorded reason — never
  // spin forever.
  Circuit c;
  const int d = c.node("d");
  c.add_current_source("I1", kGround, d,
                       SourceFunction::pulse(0.0, 2.0, 5.0, 1.0, 1e6, 1.0));
  c.add_resistor("R1", d, kGround, Kiloohms(100.0));
  c.add_capacitor("C1", d, kGround, Femtofarads(0.05));
  DiodeParams params;
  params.n_vt = 0.005;
  params.v_linear = 10.0;
  c.add_diode("D1", d, kGround, params);

  TransientOptions options;
  options.t_stop_ps = 20.0;
  options.dt_ps = 1.0;
  options.v_step_limit = 50.0;  // force the first rejection (Inf overshoot)
  options.lte_tolerance_v = 1e-15;  // then reject every substep
  const auto result = try_run_transient(c, options, {d});
  EXPECT_FALSE(result.diagnostics.converged);
  EXPECT_FALSE(result.diagnostics.failure.empty());
  EXPECT_GE(result.diagnostics.rejected_steps, 1u);
  // The reason names the mechanism that gave up.
  const bool names_floor =
      result.diagnostics.failure.find("dt floor") != std::string::npos ||
      result.diagnostics.failure.find("retry budget") != std::string::npos;
  EXPECT_TRUE(names_floor) << result.diagnostics.failure;
}

TEST(RecoveryDifferential, RecoveryNeverPerturbsConvergingRuns) {
  // Byte-identical waveforms: a circuit that converges on the direct
  // path must produce bit-for-bit the same samples whether the recovery
  // ladder is armed or not.
  auto build = [] {
    Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    c.add_voltage_source(
        "V1", in, kGround,
        SourceFunction::pulse(0.0, 1.0, 10.0, 5.0, 40.0, 5.0));
    c.add_resistor("R1", in, out, Kiloohms(10.0));
    c.add_capacitor("C1", out, kGround, Femtofarads(5.0));
    DiodeParams clamp;
    c.add_diode("D1", out, kGround, clamp);
    return c;
  };

  TransientOptions with_recovery;
  with_recovery.t_stop_ps = 100.0;
  TransientOptions without_recovery = with_recovery;
  without_recovery.enable_recovery = false;

  Circuit c1 = build();
  Circuit c2 = build();
  const int out1 = c1.node("out");
  const int out2 = c2.node("out");
  const auto r1 = run_transient(c1, with_recovery, {out1});
  const auto r2 = run_transient(c2, without_recovery, {out2});

  EXPECT_TRUE(r1.diagnostics.exact);
  EXPECT_TRUE(r2.diagnostics.exact);
  const auto& s1 = r1.probe(out1).samples();
  const auto& s2 = r2.probe(out2).samples();
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    // operator== on doubles: byte-identity, not tolerance.
    EXPECT_EQ(s1[i].t_ps, s2[i].t_ps) << "sample " << i;
    EXPECT_EQ(s1[i].v, s2[i].v) << "sample " << i;
  }
  EXPECT_EQ(r1.total_newton_iterations, r2.total_newton_iterations);
}

TEST(WaveformGuards, RejectsNonFiniteSamples) {
  Waveform w;
  w.append(0.0, 0.5);
  EXPECT_THROW(w.append(1.0, std::nan("")), SolveError);
  EXPECT_THROW(w.append(1.0, std::numeric_limits<double>::infinity()),
               SolveError);
  EXPECT_THROW(w.append(std::nan(""), 0.0), SolveError);
  EXPECT_EQ(w.size(), 1u);
}

TEST(WaveformGuards, RejectsNonMonotoneTimeAxis) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.5);
  w.append(1.0, 0.6);  // equal timestamps are allowed (step records)
  EXPECT_THROW(w.append(0.5, 0.7), SolveError);
  EXPECT_EQ(w.size(), 3u);
}

TEST(WaveformGuards, RejectsNonFiniteMeasurementArguments) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(10.0, 1.0);
  EXPECT_THROW((void)w.value_at(std::nan("")), SolveError);
  EXPECT_THROW((void)w.first_crossing(std::nan(""), true), SolveError);
  EXPECT_THROW((void)w.time_above(std::numeric_limits<double>::infinity()),
               SolveError);
  EXPECT_THROW((void)w.pulse_width_above(std::nan("")), SolveError);
}

TEST(DiagnosticsJson, SerializesSchemaFields) {
  SolverDiagnostics diag;
  diag.converged = false;
  diag.exact = false;
  diag.rung_attempts[2] = 13;
  diag.deepest_rung = RecoveryRung::kGminStep;
  diag.failure = "singular \"MNA\" matrix";
  const std::string json = diag.to_json();
  EXPECT_NE(json.find("\"converged\": false"), std::string::npos);
  EXPECT_NE(json.find("\"gmin-step\": 13"), std::string::npos);
  EXPECT_NE(json.find("\"deepest_rung\": \"gmin-step\""), std::string::npos);
  EXPECT_NE(json.find("singular \\\"MNA\\\" matrix"), std::string::npos);
}

TEST(DiagnosticsMerge, AggregatesCountersAndDeepestRung) {
  SolverDiagnostics a;
  a.newton_iterations = 10;
  a.steps = 5;
  a.min_dt_ps = 1.0;
  SolverDiagnostics b;
  b.newton_iterations = 7;
  b.exact = false;
  b.deepest_rung = RecoveryRung::kSourceStep;
  b.min_dt_ps = 0.25;
  b.rejected_steps = 3;
  a.merge(b);
  EXPECT_EQ(a.newton_iterations, 17u);
  EXPECT_EQ(a.steps, 5u);
  EXPECT_EQ(a.rejected_steps, 3u);
  EXPECT_FALSE(a.exact);
  EXPECT_TRUE(a.converged);
  EXPECT_EQ(a.deepest_rung, RecoveryRung::kSourceStep);
  EXPECT_DOUBLE_EQ(a.min_dt_ps, 0.25);
}

TEST(Characterization, DefaultLibraryMeasuresExactly) {
  CharacterizeOptions options;
  options.include_cwsp = false;  // keep the test fast
  const auto report = characterize_library(make_default_library(), options);
  ASSERT_EQ(report.arcs.size(), 6u);
  EXPECT_FALSE(report.any_fallback());
  for (const auto& arc : report.arcs) {
    EXPECT_EQ(arc.provenance, ArcProvenance::kSpiceExact) << arc.cell;
    EXPECT_GT(arc.delay_ps, 0.0) << arc.cell;
    EXPECT_TRUE(arc.diagnostics.converged) << arc.cell;
  }
}

TEST(Characterization, ExhaustedLadderDegradesToCalibratedModel) {
  CharacterizeOptions options;
  options.include_cwsp = false;
  // One Newton iteration can never converge the nonlinear one-gate
  // circuits: every arc must fall back — visibly, never silently.
  options.transient.max_newton_iterations = 1;
  const auto report = characterize_library(make_default_library(), options);
  ASSERT_EQ(report.arcs.size(), 6u);
  EXPECT_EQ(report.fallback_count(), 6u);
  EXPECT_EQ(report.fallback_cells().size(), 6u);
  for (const auto& arc : report.arcs) {
    EXPECT_EQ(arc.provenance, ArcProvenance::kCalibratedFallback) << arc.cell;
    // Fallback value equals the calibrated analytical model exactly.
    EXPECT_DOUBLE_EQ(arc.delay_ps, arc.model_delay_ps) << arc.cell;
    EXPECT_FALSE(arc.diagnostics.converged) << arc.cell;
  }
  const std::string json = report.to_json();
  EXPECT_NE(json.find("calibrated-fallback"), std::string::npos);
  EXPECT_NE(json.find("\"fallback_count\": 6"), std::string::npos);
}

}  // namespace
}  // namespace cwsp::spice
