#include "cwsp/coverage.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace cwsp::core {
namespace {

class CoverageTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(q1)
OUTPUT(y)
t1 = NAND(a, q2)
t2 = XOR(t1, b)
t3 = OR(t2, c)
d1 = NOT(t3)
q1 = DFF(d1)
q2 = DFF(t1)
y  = AND(q1, q2)
)",
                                        lib_);
  ProtectionParams params_ = ProtectionParams::q100();
  Picoseconds period_{2000.0};
};

TEST_F(CoverageTest, FunctionalCampaignFullyProtected) {
  CampaignOptions options;
  options.runs = 60;
  options.cycles_per_run = 12;
  options.glitch_width = Picoseconds(400.0);
  options.seed = 42;
  const auto report =
      run_functional_campaign(netlist_, params_, period_, options);
  EXPECT_EQ(report.runs, 60u);
  EXPECT_EQ(report.protected_failures, 0u);
  EXPECT_DOUBLE_EQ(report.protected_coverage_pct(), 100.0);
  // The harness has teeth: the unprotected design must fail for at least
  // some of the same strikes.
  EXPECT_GT(report.unprotected_failures, 0u);
}

TEST_F(CoverageTest, ScenarioSweepFullyProtected) {
  CampaignOptions options;
  options.runs = 25;
  options.cycles_per_run = 10;
  options.glitch_width = Picoseconds(400.0);
  options.seed = 7;
  const auto report = run_scenario_sweep(netlist_, params_, period_, options);
  EXPECT_EQ(report.runs, 4u * 25u);
  EXPECT_EQ(report.protected_failures, 0u);
}

TEST_F(CoverageTest, DetectionsAndBubblesAccounted) {
  CampaignOptions options;
  options.runs = 60;
  options.glitch_width = Picoseconds(400.0);
  options.seed = 3;
  const auto report =
      run_functional_campaign(netlist_, params_, period_, options);
  // Some strikes land on capture edges → bubbles appear; every detection
  // costs exactly one bubble.
  EXPECT_GT(report.bubbles, 0u);
  EXPECT_EQ(report.bubbles,
            report.detected_errors + report.spurious_recomputes);
}

TEST_F(CoverageTest, OverwideGlitchesReduceCoverage) {
  CampaignOptions options;
  options.runs = 80;
  options.glitch_width = Picoseconds(900.0);  // > δ: guarantee void
  options.seed = 11;
  const auto report =
      run_functional_campaign(netlist_, params_, period_, options);
  EXPECT_GT(report.protected_failures, 0u);
  EXPECT_LT(report.protected_coverage_pct(), 100.0);
}

TEST_F(CoverageTest, AreaWeightedCampaignAlsoFullyProtected) {
  CampaignOptions options;
  options.runs = 40;
  options.glitch_width = Picoseconds(400.0);
  options.seed = 21;
  options.area_weighted_sites = true;
  const auto report =
      run_functional_campaign(netlist_, params_, period_, options);
  EXPECT_EQ(report.protected_failures, 0u);
  EXPECT_GT(report.unprotected_failures, 0u);
}

TEST_F(CoverageTest, ZeroStrikeCampaignIsInvalidNotFullyCovered) {
  // A campaign that injected nothing used to report 100% coverage — a
  // vacuous claim. It must now be flagged invalid with 0% coverage.
  CoverageReport empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_DOUBLE_EQ(empty.protected_coverage_pct(), 0.0);
  EXPECT_DOUBLE_EQ(empty.unprotected_failure_pct(), 0.0);

  CampaignOptions options;
  options.runs = 0;
  const auto report =
      run_functional_campaign(netlist_, params_, period_, options);
  EXPECT_FALSE(report.valid());
  EXPECT_DOUBLE_EQ(report.protected_coverage_pct(), 0.0);
}

TEST_F(CoverageTest, AllInconclusiveCampaignIsNotCovered) {
  CoverageReport report;
  report.strikes_injected = 10;
  report.inconclusive = 10;
  report.timeouts = 4;
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.conclusive_strikes(), 0u);
  // No verdicts → no coverage claim, even though strikes were injected.
  EXPECT_DOUBLE_EQ(report.protected_coverage_pct(), 0.0);
}

TEST_F(CoverageTest, ScenarioSweepReportsPerScenarioBreakdown) {
  CampaignOptions options;
  options.runs = 10;
  options.cycles_per_run = 8;
  options.seed = 9;
  const auto report = run_scenario_sweep(netlist_, params_, period_, options);
  ASSERT_EQ(report.scenarios.size(), 4u);
  EXPECT_EQ(report.scenarios[0].name, "eq-checker");
  EXPECT_EQ(report.scenarios[1].name, "eqglbf-dff");
  EXPECT_EQ(report.scenarios[2].name, "cwstar-dff");
  EXPECT_EQ(report.scenarios[3].name, "cwsp-output");
  std::size_t total = 0;
  for (const auto& s : report.scenarios) total += s.strikes;
  EXPECT_EQ(total, report.strikes_injected);
}

TEST_F(CoverageTest, ScenarioFindOrAppendAccumulates) {
  CoverageReport report;
  report.scenario("functional").strikes = 3;
  report.scenario("functional").escapes = 1;
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_EQ(report.scenarios[0].strikes, 3u);
  EXPECT_EQ(report.scenarios[0].escapes, 1u);
}

TEST_F(CoverageTest, DeterministicForSeed) {
  CampaignOptions options;
  options.runs = 20;
  options.seed = 5;
  const auto a = run_functional_campaign(netlist_, params_, period_, options);
  const auto b = run_functional_campaign(netlist_, params_, period_, options);
  EXPECT_EQ(a.bubbles, b.bubbles);
  EXPECT_EQ(a.unprotected_failures, b.unprotected_failures);
}

}  // namespace
}  // namespace cwsp::core
