// Electrical validation of the paper's circuit structures: the Fig-6
// strike experiment and the CWSP element's state-holding behaviour.

#include "spice/subckt.hpp"

#include <gtest/gtest.h>

namespace cwsp::spice {
namespace {

using namespace cwsp::literals;

TEST(StrikeHarness, GlitchWidth100fCMatchesPaper) {
  // Paper §4 / Fig. 6: Q=100 fC on a min inverter → 500 ps glitch.
  const auto width = measure_strike_glitch_width(100.0_fC);
  EXPECT_NEAR(width.value(), 500.0, 25.0);
}

TEST(StrikeHarness, GlitchWidth150fCMatchesPaper) {
  // Q=150 fC → 600 ps glitch.
  const auto width = measure_strike_glitch_width(150.0_fC);
  EXPECT_NEAR(width.value(), 600.0, 30.0);
}

TEST(StrikeHarness, WaveformClampsNear1p6V) {
  // Fig. 6: the struck node saturates around 1.6 V (junction clamp).
  const auto w = strike_waveform(150.0_fC);
  EXPECT_GT(w.peak(), 1.45);
  EXPECT_LT(w.peak(), 1.75);
}

TEST(StrikeHarness, GlitchWidthMonotoneInCharge) {
  double prev = 0.0;
  for (double q : {40.0, 80.0, 120.0, 160.0}) {
    const double width = measure_strike_glitch_width(Femtocoulombs(q)).value();
    EXPECT_GE(width, prev) << "Q=" << q;
    prev = width;
  }
}

TEST(StrikeHarness, SmallChargeCausesNoGlitch) {
  // A few fC cannot lift the node past VDD/2 against the on NMOS.
  const auto width = measure_strike_glitch_width(2.0_fC);
  EXPECT_LT(width.value(), 30.0);
}

TEST(StrikeHarness, NodeReturnsToCorrectValue) {
  const auto w = strike_waveform(100.0_fC, SpiceTech{}, 2000.0);
  EXPECT_NEAR(w.value_at(1990.0), 0.0, 0.02);
}

class CwspElementTest : public ::testing::Test {
 protected:
  // Builds: a (pulsed), a* (same pulse delayed by δ) → CWSP element.
  // Returns the waveform of the CWSP output.
  Waveform run(double glitch_start_ps, double glitch_width_ps,
               double delta_ps, bool initial_high_input) {
    SpiceTech tech;
    Circuit c;
    const int vdd = add_vdd(c, tech);
    const int a = c.node("a");
    const int a_star = c.node("a_star");
    const int out = c.node("cw");

    const double base = initial_high_input ? tech.vdd : 0.0;
    const double peak = initial_high_input ? 0.0 : tech.vdd;
    // The SET glitch appears on a, and δ later on a*.
    c.add_voltage_source("Va", a, kGround,
                         SourceFunction::pulse(base, peak, glitch_start_ps,
                                               5.0, glitch_width_ps, 5.0));
    c.add_voltage_source(
        "Vastar", a_star, kGround,
        SourceFunction::pulse(base, peak, glitch_start_ps + delta_ps, 5.0,
                              glitch_width_ps, 5.0));
    add_cwsp_element(c, "cwsp", a, a_star, out, vdd,
                     cal::kCwspPmosMultQLow, cal::kCwspNmosMultQLow, tech);

    TransientOptions options;
    options.t_stop_ps = glitch_start_ps + glitch_width_ps + delta_ps + 400.0;
    const auto result = run_transient(c, options, {out});
    return result.probe(out);
  }
};

TEST_F(CwspElementTest, InvertsInSteadyState) {
  // No glitch: a = a* = 1 constantly → out = 0.
  SpiceTech tech;
  Circuit c;
  const int vdd = add_vdd(c, tech);
  const int a = c.node("a");
  const int out = c.node("cw");
  c.add_voltage_source("Va", a, kGround, SourceFunction::dc(tech.vdd));
  add_cwsp_element(c, "cwsp", a, a, out, vdd, 30.0, 12.0, tech);
  const auto v = solve_dc(c);
  EXPECT_NEAR(v[static_cast<std::size_t>(out)], 0.0, 0.02);

  Circuit c2;
  const int vdd2 = add_vdd(c2, tech);
  const int a2 = c2.node("a");
  const int out2 = c2.node("cw");
  c2.add_voltage_source("Va", a2, kGround, SourceFunction::dc(0.0));
  add_cwsp_element(c2, "cwsp", a2, a2, out2, vdd2, 30.0, 12.0, tech);
  const auto v2 = solve_dc(c2);
  EXPECT_NEAR(v2[static_cast<std::size_t>(out2)], tech.vdd, 0.02);
}

TEST_F(CwspElementTest, HoldsStateThroughGlitchHighInput) {
  // Input nominally 1 → output nominally 0. A 300 ps glitch hits a, then
  // a* 350 ps later. While a != a*, both networks are off; the output must
  // stay below the switching threshold throughout.
  const auto w = run(/*glitch_start=*/200.0, /*width=*/300.0,
                     /*delta=*/350.0, /*initial_high_input=*/true);
  EXPECT_LT(w.peak(), 0.45);
}

TEST_F(CwspElementTest, HoldsStateThroughGlitchLowInput) {
  // Input nominally 0 → output nominally 1; glitch pulls a up.
  const auto w = run(200.0, 300.0, 350.0, /*initial_high_input=*/false);
  EXPECT_GT(w.trough(), 0.55);
}

TEST_F(CwspElementTest, RecoversAfterGlitch) {
  const auto w = run(200.0, 300.0, 350.0, true);
  // Long after the glitch (a = a* = 1 again) output must be solidly low.
  const auto& last = w.samples().back();
  EXPECT_NEAR(last.v, 0.0, 0.05);
}

}  // namespace
}  // namespace cwsp::spice
