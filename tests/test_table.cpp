#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cwsp {
namespace {

TEST(TextTable, FormatsNumbers) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(1624.53789, 5), "1624.53789");
  EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.set_header({"Circuit", "Area"});
  t.add_row({"alu2", "28.25"});
  t.add_row({"C880", "36.15"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Circuit"), std::string::npos);
  EXPECT_NE(out.find("alu2"), std::string::npos);
  EXPECT_NE(out.find("C880"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.set_header({"A", "B", "C"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

TEST(TextTable, SetHeaderResetsRows) {
  TextTable t;
  t.set_header({"A"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  t.set_header({"B"});
  EXPECT_EQ(t.row_count(), 0u);
}

}  // namespace
}  // namespace cwsp
