// Property-based cross-checks between the zero-delay golden simulator and
// the event-driven timing simulator, over randomly generated netlists.

#include <gtest/gtest.h>

#include "netlist_fuzz.hpp"
#include "sim/event_sim.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp {
namespace {

class SimEquivalence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(SimEquivalence, EventSimSettledValuesMatchLogicSim) {
  const auto netlist = testing::make_random_netlist(lib_, GetParam());
  sim::LogicSim logic(netlist);
  sim::EventSim event(netlist);
  Rng rng(GetParam() ^ 0xabcdef);

  for (int trial = 0; trial < 8; ++trial) {
    std::vector<bool> pis(netlist.primary_inputs().size());
    for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = rng.next_bool();
    std::vector<bool> ffs(netlist.num_flip_flops());
    for (std::size_t i = 0; i < ffs.size(); ++i) ffs[i] = rng.next_bool();

    logic.set_ff_state(ffs);
    logic.set_inputs(pis);
    logic.evaluate();

    const auto cycle = event.simulate_cycle(pis, ffs, Picoseconds(1e6),
                                            std::nullopt);
    // Settled D values equal the zero-delay evaluation.
    for (std::size_t f = 0; f < netlist.num_flip_flops(); ++f) {
      EXPECT_EQ(cycle.golden_d[f],
                logic.value(netlist.flip_flop(FlipFlopId{f}).d))
          << "seed " << GetParam() << " trial " << trial << " ff " << f;
    }
    const auto po = logic.output_values();
    for (std::size_t i = 0; i < po.size(); ++i) {
      EXPECT_EQ(cycle.golden_po[i], po[i]) << "seed " << GetParam();
    }
    // Without a strike nothing is corrupted and no glitch exists.
    EXPECT_EQ(cycle.latched_d, cycle.golden_d);
    EXPECT_FALSE(cycle.glitch_reached_endpoint);
  }
}

TEST_P(SimEquivalence, StrikeNeverChangesSettledValues) {
  const auto netlist = testing::make_random_netlist(lib_, GetParam());
  sim::EventSim event(netlist);
  Rng rng(GetParam() ^ 0x5555);
  const auto sites = set::strike_sites(netlist);

  for (int trial = 0; trial < 6; ++trial) {
    std::vector<bool> pis(netlist.primary_inputs().size());
    for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = rng.next_bool();
    std::vector<bool> ffs(netlist.num_flip_flops());
    for (std::size_t i = 0; i < ffs.size(); ++i) ffs[i] = rng.next_bool();

    set::Strike strike;
    strike.node = sites[rng.next_below(sites.size())];
    strike.start = Picoseconds(rng.next_double_in(0.0, 500.0));
    strike.width = Picoseconds(rng.next_double_in(20.0, 400.0));

    // Sampling far after the glitch: the SET is transient, so the settled
    // state must be identical with and without it.
    const auto struck =
        event.simulate_cycle(pis, ffs, Picoseconds(1e6), strike);
    const auto clean =
        event.simulate_cycle(pis, ffs, Picoseconds(1e6), std::nullopt);
    EXPECT_EQ(struck.latched_d, clean.latched_d) << "seed " << GetParam();
    EXPECT_EQ(struck.struck_po, clean.struck_po) << "seed " << GetParam();
  }
}

TEST_P(SimEquivalence, StrikeOutsideSensitizedConeIsMasked) {
  // A strike whose glitch is reported at no endpoint must not corrupt any
  // capture regardless of the capture time.
  const auto netlist = testing::make_random_netlist(lib_, GetParam());
  sim::EventSim event(netlist);
  Rng rng(GetParam() ^ 0x77);
  const auto sites = set::strike_sites(netlist);

  std::vector<bool> pis(netlist.primary_inputs().size());
  for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = rng.next_bool();
  std::vector<bool> ffs(netlist.num_flip_flops());
  for (std::size_t i = 0; i < ffs.size(); ++i) ffs[i] = rng.next_bool();

  set::Strike strike;
  strike.node = sites[rng.next_below(sites.size())];
  strike.start = Picoseconds(100.0);
  strike.width = Picoseconds(300.0);

  const auto probe =
      event.simulate_cycle(pis, ffs, Picoseconds(1e6), strike);
  if (!probe.glitch_reached_endpoint) {
    for (double capture : {200.0, 400.0, 600.0, 1000.0}) {
      const auto r =
          event.simulate_cycle(pis, ffs, Picoseconds(capture), strike);
      EXPECT_FALSE(r.any_ff_corrupted()) << "capture " << capture;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace cwsp
