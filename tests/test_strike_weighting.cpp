#include "set/strike_plan.hpp"

#include <gtest/gtest.h>

#include <map>

#include "netlist/netlist.hpp"

namespace cwsp::set {
namespace {

TEST(AreaWeightedStrikes, LargerCellsHitMoreOften) {
  const CellLibrary lib = make_default_library();
  Netlist n(lib, "weighted");
  const NetId a = n.add_primary_input("a");
  const NetId b = n.add_primary_input("b");
  // INV (2 W·L units) vs XOR2 (10 units): the XOR output should attract
  // roughly 5x the strikes.
  const GateId small = n.add_gate(lib.cell_for(CellKind::kInv), {a}, "s");
  const GateId large = n.add_gate(lib.cell_for(CellKind::kXor2), {a, b}, "l");
  n.mark_primary_output(n.gate(small).output);
  n.mark_primary_output(n.gate(large).output);
  n.validate();

  Rng rng(99);
  const auto strikes = area_weighted_strikes(
      n, 6000, Picoseconds(100.0), Picoseconds(0.0), Picoseconds(1000.0),
      rng);

  std::map<std::uint32_t, std::size_t> hits;
  for (const auto& s : strikes) ++hits[s.node.value()];
  const double ratio =
      static_cast<double>(hits[n.gate(large).output.value()]) /
      static_cast<double>(hits[n.gate(small).output.value()]);
  EXPECT_NEAR(ratio, 5.0, 0.6);
}

TEST(AreaWeightedStrikes, FlipFlopsUseFfArea) {
  const CellLibrary lib = make_default_library();
  Netlist n(lib, "ff_weight");
  const NetId a = n.add_primary_input("a");
  const GateId inv = n.add_gate(lib.cell_for(CellKind::kInv), {a}, "d");
  const FlipFlopId ff = n.add_flip_flop(n.gate(inv).output, "q");
  const GateId sink = n.add_gate(lib.cell_for(CellKind::kBuf),
                                 {n.flip_flop(ff).q}, "y");
  n.mark_primary_output(n.gate(sink).output);
  n.validate();

  Rng rng(7);
  const auto strikes = area_weighted_strikes(
      n, 4000, Picoseconds(100.0), Picoseconds(0.0), Picoseconds(500.0),
      rng);
  std::size_t ff_hits = 0;
  for (const auto& s : strikes) {
    if (s.node == n.flip_flop(ff).q) ++ff_hits;
  }
  // FF area (24 units) vs INV (2) + BUF (4): expect ~80% of strikes on Q.
  EXPECT_NEAR(static_cast<double>(ff_hits) / 4000.0, 24.0 / 30.0, 0.05);
}

TEST(AreaWeightedStrikes, TimesWithinWindow) {
  const CellLibrary lib = make_default_library();
  Netlist n(lib, "w");
  const NetId a = n.add_primary_input("a");
  const GateId g = n.add_gate(lib.cell_for(CellKind::kInv), {a}, "y");
  n.mark_primary_output(n.gate(g).output);

  Rng rng(3);
  const auto strikes = area_weighted_strikes(
      n, 200, Picoseconds(50.0), Picoseconds(100.0), Picoseconds(300.0),
      rng);
  for (const auto& s : strikes) {
    EXPECT_GE(s.start.value(), 100.0);
    EXPECT_LT(s.start.value(), 300.0);
  }
}

}  // namespace
}  // namespace cwsp::set
