// Electrical property sweep: the CWSP element must hold its output
// through an input-disagreement window across glitch widths, delays and
// both polarities — the foundation of the paper's SET guarantee.

#include <gtest/gtest.h>

#include "spice/subckt.hpp"

namespace cwsp::spice {
namespace {

struct HoldCase {
  double glitch_width_ps;
  double delta_ps;
  bool input_high;
  double wp;
  double wn;
};

class CwspHoldSweep : public ::testing::TestWithParam<HoldCase> {};

TEST_P(CwspHoldSweep, OutputNeverCrossesThreshold) {
  const auto& tc = GetParam();
  SpiceTech tech;
  Circuit c;
  const int vdd = add_vdd(c, tech);
  const int a = c.node("a");
  const int a_star = c.node("a_star");
  const int out = c.node("cw");

  const double base = tc.input_high ? tech.vdd : 0.0;
  const double peak = tc.input_high ? 0.0 : tech.vdd;
  c.add_voltage_source("Va", a, kGround,
                       SourceFunction::pulse(base, peak, 200.0, 5.0,
                                             tc.glitch_width_ps, 5.0));
  c.add_voltage_source(
      "Vastar", a_star, kGround,
      SourceFunction::pulse(base, peak, 200.0 + tc.delta_ps, 5.0,
                            tc.glitch_width_ps, 5.0));
  add_cwsp_element(c, "cwsp", a, a_star, out, vdd, tc.wp, tc.wn, tech);

  TransientOptions options;
  options.t_stop_ps = 200.0 + tc.glitch_width_ps + tc.delta_ps + 500.0;
  const auto result = run_transient(c, options, {out});
  const auto& w = result.probe(out);

  if (tc.input_high) {
    // Output nominally low; must stay below the switch point throughout.
    EXPECT_LT(w.peak(), 0.5) << "width " << tc.glitch_width_ps << " delta "
                             << tc.delta_ps;
    EXPECT_NEAR(w.samples().back().v, 0.0, 0.05);
  } else {
    EXPECT_GT(w.trough(), 0.5);
    EXPECT_NEAR(w.samples().back().v, tech.vdd, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CwspHoldSweep,
    ::testing::Values(
        // Q=100 fC sizing (30/12) across widths and polarities.
        HoldCase{200.0, 250.0, true, 30.0, 12.0},
        HoldCase{200.0, 250.0, false, 30.0, 12.0},
        HoldCase{400.0, 450.0, true, 30.0, 12.0},
        HoldCase{400.0, 450.0, false, 30.0, 12.0},
        HoldCase{500.0, 520.0, true, 30.0, 12.0},
        HoldCase{500.0, 520.0, false, 30.0, 12.0},
        // Q=150 fC sizing (40/16) at the wider design point.
        HoldCase{600.0, 620.0, true, 40.0, 16.0},
        HoldCase{600.0, 620.0, false, 40.0, 16.0},
        // Short glitches with long hold windows.
        HoldCase{100.0, 600.0, true, 30.0, 12.0},
        HoldCase{100.0, 600.0, false, 40.0, 16.0}));

}  // namespace
}  // namespace cwsp::spice
