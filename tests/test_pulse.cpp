#include "set/pulse.hpp"

#include <gtest/gtest.h>

namespace cwsp::set {
namespace {

using namespace cwsp::literals;

TEST(DoubleExponentialPulse, ZeroBeforeStrike) {
  const DoubleExponentialPulse p(100.0_fC);
  EXPECT_DOUBLE_EQ(p.current_ma(Picoseconds(-5.0)), 0.0);
  EXPECT_DOUBLE_EQ(p.current_ma(Picoseconds(0.0)), 0.0);
}

TEST(DoubleExponentialPulse, PeakTimeAnalytic) {
  const DoubleExponentialPulse p(100.0_fC, 200.0_ps, 50.0_ps);
  // t* = ln(τα/τβ)·τατβ/(τα−τβ) = ln(4)·10000/150 ≈ 92.42 ps.
  EXPECT_NEAR(p.peak_time().value(), 92.42, 0.01);
  // Numerically verify it is a maximum.
  const double peak = p.peak_current_ma();
  EXPECT_GE(peak, p.current_ma(Picoseconds(80.0)));
  EXPECT_GE(peak, p.current_ma(Picoseconds(105.0)));
}

TEST(DoubleExponentialPulse, TotalChargeEqualsQ) {
  for (double q : {50.0, 100.0, 150.0}) {
    const DoubleExponentialPulse p{Femtocoulombs(q)};
    EXPECT_NEAR(p.charge_delivered(Picoseconds(1e5)).value(), q, 1e-6)
        << "Q=" << q;
  }
}

TEST(DoubleExponentialPulse, ChargeDeliveredMonotone) {
  const DoubleExponentialPulse p(100.0_fC);
  double prev = -1.0;
  for (double t = 0.0; t <= 1000.0; t += 50.0) {
    const double c = p.charge_delivered(Picoseconds(t)).value();
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(DoubleExponentialPulse, ScalesLinearlyWithQ) {
  const DoubleExponentialPulse p1(100.0_fC);
  const DoubleExponentialPulse p2(150.0_fC);
  const Picoseconds t{80.0};
  EXPECT_NEAR(p2.current_ma(t) / p1.current_ma(t), 1.5, 1e-12);
}

TEST(DoubleExponentialPulse, InvalidTausRejected) {
  EXPECT_THROW(DoubleExponentialPulse(100.0_fC, 50.0_ps, 200.0_ps), Error);
  EXPECT_THROW(DoubleExponentialPulse(100.0_fC, 200.0_ps, Picoseconds(0.0)),
               Error);
}

TEST(ChargeFromLet, PaperFormula) {
  // Q[pC] = 0.01036 · LET · depth; LET=20 MeV·cm²/mg, t=2 µm →
  // 0.4144 pC = 414.4 fC.
  EXPECT_NEAR(charge_from_let(20.0, 2.0).value(), 414.4, 0.01);
  // The paper's reference alpha particle: LET = 1.
  EXPECT_NEAR(charge_from_let(1.0, 1.0).value(), 10.36, 0.01);
}

TEST(ChargeFromLet, RejectsNonPositiveDepth) {
  EXPECT_THROW((void)(charge_from_let(10.0, 0.0)), Error);
  EXPECT_THROW((void)(charge_from_let(-1.0, 1.0)), Error);
}

}  // namespace
}  // namespace cwsp::set
