#include "scheme/scheme.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "cwsp/coverage.hpp"
#include "iscas_data.hpp"
#include "netlist/bench_parser.hpp"
#include "scheme/compare.hpp"
#include "scheme/fault_model.hpp"
#include "service/handlers.hpp"
#include "service/session.hpp"
#include "set/strike_plan.hpp"

namespace cwsp::scheme {
namespace {

class SchemeTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(testdata::kS27, lib_, "s27");
  core::ProtectionParams params_ = core::ProtectionParams::q100();
  Picoseconds period_{2000.0};

  [[nodiscard]] set::StrikePlanOptions plan_options() const {
    set::StrikePlanOptions po;
    po.functional_strikes = 12;
    po.protection_path_strikes = 4;
    po.clock_edge_strikes = 4;
    po.out_of_envelope_strikes = 4;
    po.cycles_per_run = 10;
    po.clock_period = period_;
    po.out_of_envelope_width = params_.delta + Picoseconds(400.0);
    return po;
  }

  [[nodiscard]] campaign::CampaignEngine engine() const {
    return campaign::CampaignEngine(netlist_, params_, period_);
  }

  [[nodiscard]] std::string run_json(const set::StrikePlan& plan,
                                     const ProtectionScheme* scheme,
                                     const char* model,
                                     std::size_t jobs) const {
    campaign::EngineOptions options;
    options.seed = 9;
    options.cycles_per_run = 10;
    options.jobs = jobs;
    options.scheme = scheme;
    options.fault_model = model;
    const campaign::CampaignResult result = engine().run(plan, options);
    return campaign::format_campaign_json(result, plan, netlist_, options,
                                          period_);
  }
};

// ---- registry -------------------------------------------------------

TEST(SchemeRegistry, RegistersCwspTmrLocoInStableOrder) {
  const auto& schemes = registered_schemes();
  ASSERT_EQ(schemes.size(), 3u);
  EXPECT_STREQ(schemes[0]->name(), "cwsp");
  EXPECT_STREQ(schemes[1]->name(), "tmr");
  EXPECT_STREQ(schemes[2]->name(), "loco");
  EXPECT_EQ(&default_scheme(), schemes[0]);
  EXPECT_EQ(find_scheme("tmr"), schemes[1]);
  EXPECT_EQ(find_scheme("nonesuch"), nullptr);
  EXPECT_EQ(known_scheme_names(), "cwsp, tmr, loco");
  EXPECT_TRUE(default_scheme().certifiable());
  EXPECT_FALSE(schemes[1]->certifiable());
  EXPECT_FALSE(schemes[2]->certifiable());
}

TEST(SchemeRegistry, RegistersFaultModelsInStableOrder) {
  const auto& models = registered_fault_models();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_STREQ(models[0]->name(), "single-set");
  EXPECT_STREQ(models[1]->name(), "double-set");
  EXPECT_STREQ(models[2]->name(), "protection-seu");
  EXPECT_EQ(&default_fault_model(), models[0]);
  EXPECT_EQ(find_fault_model("double-set"), models[1]);
  EXPECT_EQ(find_fault_model("nonesuch"), nullptr);
  EXPECT_EQ(known_fault_model_names(),
            "single-set, double-set, protection-seu");
}

// ---- CWSP-as-scheme differential ------------------------------------

TEST_F(SchemeTest, CwspSchemeIsByteIdenticalToEngineDefault) {
  const set::StrikePlan plan =
      set::build_strike_plan(netlist_, plan_options(), 9);
  const std::string baseline = run_json(plan, nullptr, "single-set", 1);
  EXPECT_EQ(run_json(plan, &default_scheme(), "single-set", 1), baseline);
  EXPECT_EQ(run_json(plan, &default_scheme(), "single-set", 8), baseline);
}

TEST_F(SchemeTest, SingleSetModelMatchesPlannerVerbatim) {
  const set::StrikePlan direct =
      set::build_strike_plan(netlist_, plan_options(), 9);
  const set::StrikePlan modelled =
      default_fault_model().build_plan(netlist_, plan_options(), 9);
  EXPECT_EQ(set::plan_fingerprint(direct), set::plan_fingerprint(modelled));
  EXPECT_EQ(direct.size(), modelled.size());
}

// ---- non-CWSP determinism -------------------------------------------

TEST_F(SchemeTest, TmrAndLocoReportsAreByteIdenticalAcrossJobCounts) {
  for (const char* name : {"tmr", "loco"}) {
    const ProtectionScheme* scheme = find_scheme(name);
    ASSERT_NE(scheme, nullptr);
    for (const FaultModel* model : registered_fault_models()) {
      const set::StrikePlan plan =
          model->build_plan(netlist_, plan_options(), 9);
      const std::string one = run_json(plan, scheme, model->name(), 1);
      EXPECT_EQ(run_json(plan, scheme, model->name(), 8), one)
          << name << " x " << model->name();
    }
  }
}

// ---- double-set model -----------------------------------------------

TEST_F(SchemeTest, DoubleSetPlanIsDeterministicAndPairsOnlyFunctional) {
  const FaultModel* model = find_fault_model("double-set");
  ASSERT_NE(model, nullptr);
  const set::StrikePlan a = model->build_plan(netlist_, plan_options(), 9);
  const set::StrikePlan b = model->build_plan(netlist_, plan_options(), 9);
  EXPECT_EQ(set::plan_fingerprint(a), set::plan_fingerprint(b));

  std::size_t paired = 0;
  for (const set::PlannedStrike& p : a.strikes) {
    if (p.klass == set::StrikeClass::kProtectionPath) {
      EXPECT_FALSE(p.node2.valid());
      continue;
    }
    if (!p.node2.valid()) continue;
    ++paired;
    EXPECT_NE(p.node2, p.strike.node);
    const std::vector<NetId> candidates =
        adjacent_strike_sites(netlist_, p.strike.node);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), p.node2),
              candidates.end());
  }
  EXPECT_GT(paired, 0u);

  // A different seed draws different partners (streams are decorrelated).
  const set::StrikePlan c = model->build_plan(netlist_, plan_options(), 10);
  EXPECT_NE(set::plan_fingerprint(a), set::plan_fingerprint(c));
}

TEST_F(SchemeTest, DoubleSetPartnersSurviveSharding) {
  const FaultModel* model = find_fault_model("double-set");
  const set::StrikePlan full = model->build_plan(netlist_, plan_options(), 9);
  const std::vector<set::StrikePlan> shards = set::shard_plan(full, 3);
  std::size_t pos = 0;
  for (const set::StrikePlan& shard : shards) {
    for (const set::PlannedStrike& p : shard.strikes) {
      ASSERT_LT(pos, full.size());
      EXPECT_EQ(p.node2, full.strikes[pos].node2);
      EXPECT_EQ(p.index, full.strikes[pos].index);
      ++pos;
    }
  }
  EXPECT_EQ(pos, full.size());
}

TEST_F(SchemeTest, AdjacentStrikeSitesAreSortedAndExcludeTheNode) {
  for (const NetId node : set::strike_sites(netlist_)) {
    const std::vector<NetId> sites = adjacent_strike_sites(netlist_, node);
    EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
    EXPECT_EQ(std::adjacent_find(sites.begin(), sites.end()), sites.end());
    EXPECT_EQ(std::find(sites.begin(), sites.end(), node), sites.end());
  }
}

// ---- protection-seu model -------------------------------------------

TEST_F(SchemeTest, ProtectionSeuSpendsTheWholeBudgetOnProtectionPath) {
  const FaultModel* model = find_fault_model("protection-seu");
  ASSERT_NE(model, nullptr);
  const set::StrikePlan plan = model->build_plan(netlist_, plan_options(), 9);
  // 12 functional + 4 + 4 + 4 adversarial = 24 strikes, all re-aimed at
  // the protection circuitry.
  EXPECT_EQ(plan.size(), 24u);
  for (const set::PlannedStrike& p : plan.strikes) {
    EXPECT_EQ(p.klass, set::StrikeClass::kProtectionPath);
    EXPECT_FALSE(p.node2.valid());
  }
}

// ---- coverage keying ------------------------------------------------

TEST(CoverageScenario, SchemeAndModelKeyDistinctRows) {
  core::CoverageReport report;
  report.scenario("functional", "cwsp", "single-set").strikes = 1;
  report.scenario("functional", "cwsp", "double-set").strikes = 2;
  report.scenario("functional", "tmr", "single-set").strikes = 3;
  ASSERT_EQ(report.scenarios.size(), 3u);
  EXPECT_EQ(report.scenario("functional", "cwsp", "single-set").strikes, 1u);
  EXPECT_EQ(report.scenario("functional", "cwsp", "double-set").strikes, 2u);
  // The 1-arg overload keys on empty scheme/model and never aliases the
  // scheme-qualified rows.
  report.scenario("functional").strikes = 9;
  EXPECT_EQ(report.scenarios.size(), 4u);
  EXPECT_EQ(report.scenario("functional", "cwsp", "single-set").strikes, 1u);
}

// ---- service plumbing -----------------------------------------------

TEST(SchemeService, DefaultSpecFingerprintIsStableAcrossSpellings) {
  service::CampaignSpec implicit;
  service::CampaignSpec explicit_default;
  explicit_default.schemes = {"cwsp"};
  explicit_default.fault_models = {"single-set"};
  EXPECT_EQ(service::campaign_spec_fingerprint(implicit, 42),
            service::campaign_spec_fingerprint(explicit_default, 42));
  service::CampaignSpec tmr;
  tmr.schemes = {"tmr"};
  EXPECT_NE(service::campaign_spec_fingerprint(implicit, 42),
            service::campaign_spec_fingerprint(tmr, 42));
}

TEST(SchemeService, CampaignCellsFormTheCrossProduct) {
  service::CampaignSpec spec;
  spec.schemes = {"tmr", "loco"};
  spec.fault_models = {"single-set", "protection-seu"};
  const std::vector<service::CampaignCell> cells =
      service::campaign_cells(spec);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_STREQ(cells[0].scheme->name(), "tmr");
  EXPECT_STREQ(cells[0].model->name(), "single-set");
  EXPECT_STREQ(cells[3].scheme->name(), "loco");
  EXPECT_STREQ(cells[3].model->name(), "protection-seu");
  spec.schemes = {"nonesuch"};
  EXPECT_THROW((void)service::campaign_cells(spec), Error);
}

TEST(SchemeService, SweepEmbedsTheSameReportsAsSingleCellRuns) {
  const CellLibrary lib = make_default_library();
  const auto session =
      service::DesignSession::build("s27", testdata::kS27, lib);
  service::CampaignSpec sweep;
  sweep.runs = 8;
  sweep.cycles = 8;
  sweep.seed = 5;
  sweep.schemes = {"cwsp", "tmr"};
  const service::CampaignOutcome out = service::run_campaign(*session, sweep);
  EXPECT_NE(out.output.find("cwsp-campaign-sweep-v1"), std::string::npos);
  for (const char* name : {"cwsp", "tmr"}) {
    service::CampaignSpec one = sweep;
    one.schemes = {name};
    const service::CampaignOutcome single =
        service::run_campaign(*session, one);
    // The embedded report is the single-cell report minus its trailing
    // newline, indentation-verbatim.
    std::string body = single.output;
    while (!body.empty() && body.back() == '\n') body.pop_back();
    EXPECT_NE(out.output.find(body), std::string::npos) << name;
  }
}

TEST(SchemeService, NonCertifiableSchemeDegradesEverySiteToUnknown) {
  const CellLibrary lib = make_default_library();
  const auto session =
      service::DesignSession::build("s27", testdata::kS27, lib);
  service::CertifySpec spec;
  spec.scheme = "tmr";
  const service::CertifyOutcome outcome = service::run_certify(*session, spec);
  EXPECT_EQ(outcome.escapes, 0u);
  EXPECT_EQ(outcome.unknowns,
            set::strike_sites(*session->netlist).size());
  EXPECT_NE(outcome.output.find("not expressible"), std::string::npos);
}

TEST(SchemeService, NonCwspHardenedLintWarnsInsteadOfSilentlyPassing) {
  service::LintSpec spec;
  spec.text = testdata::kS27;
  spec.name = "s27";
  spec.hardened = true;
  spec.scheme = "loco";
  spec.json = false;
  const CellLibrary lib = make_default_library();
  const service::LintOutcome outcome = service::run_lint(spec, lib);
  EXPECT_NE(outcome.output.find("scheme-unsupported"), std::string::npos);
}

// ---- compare --------------------------------------------------------

TEST(SchemeCompare, ReportIsByteIdenticalAcrossJobCounts) {
  const CellLibrary lib = make_default_library();
  const auto session =
      service::DesignSession::build("s27", testdata::kS27, lib);
  service::CompareSpec spec;
  spec.runs = 8;
  spec.cycles = 8;
  spec.seed = 5;
  spec.jobs = 1;
  const service::CompareOutcome one = service::run_compare(*session, spec);
  spec.jobs = 8;
  const service::CompareOutcome eight = service::run_compare(*session, spec);
  EXPECT_EQ(one.output, eight.output);
  EXPECT_NE(one.output.find("cwsp-compare-v1"), std::string::npos);
  // Every registered (scheme, model) cell gets a Table-4 row.
  for (const ProtectionScheme* s : registered_schemes()) {
    EXPECT_NE(one.output.find(std::string("\"scheme\": \"") + s->name()),
              std::string::npos);
  }
}

TEST(SchemeCompare, CombinationalDesignsSkipTable4Honestly) {
  const CellLibrary lib = make_default_library();
  const auto session =
      service::DesignSession::build("c17", testdata::kC17, lib);
  service::CompareSpec spec;
  spec.runs = 4;
  const service::CompareOutcome outcome = service::run_compare(*session, spec);
  EXPECT_NE(outcome.output.find("table4_skipped"), std::string::npos);
  EXPECT_EQ(outcome.unexpected_escapes, 0u);
}

}  // namespace
}  // namespace cwsp::scheme
