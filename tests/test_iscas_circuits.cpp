// The two classic public-domain ISCAS circuits small enough to embed
// verbatim: c17 (ISCAS85, six NAND2s) and s27 (ISCAS89, 10 gates + 3
// DFFs). They exercise the parser on authentic input and give the
// protection protocol a real sequential benchmark.

#include <gtest/gtest.h>

#include "cwsp/coverage.hpp"
#include "cwsp/elaborate_system.hpp"
#include "cwsp/harden.hpp"
#include "netlist/bench_parser.hpp"
#include "iscas_data.hpp"
#include "sim/logic_sim.hpp"
#include "sta/sta.hpp"

namespace cwsp {
namespace {

using testdata::kC17;
using testdata::kS27;

class IscasTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(IscasTest, C17Structure) {
  const auto c17 = parse_bench_string(kC17, lib_, "c17");
  const auto s = c17.stats();
  EXPECT_EQ(s.num_gates, 6u);
  EXPECT_EQ(s.num_primary_inputs, 5u);
  EXPECT_EQ(s.num_primary_outputs, 2u);
  EXPECT_EQ(s.num_flip_flops, 0u);
}

TEST_F(IscasTest, C17ExhaustiveTruth) {
  const auto c17 = parse_bench_string(kC17, lib_, "c17");
  sim::LogicSim sim(c17);
  for (unsigned v = 0; v < 32; ++v) {
    const bool i1 = v & 1, i2 = (v >> 1) & 1, i3 = (v >> 2) & 1;
    const bool i6 = (v >> 3) & 1, i7 = (v >> 4) & 1;
    sim.set_inputs({i1, i2, i3, i6, i7});
    sim.evaluate();
    // Reference: direct evaluation of the NAND network.
    const bool n10 = !(i1 && i3);
    const bool n11 = !(i3 && i6);
    const bool n16 = !(i2 && n11);
    const bool n19 = !(n11 && i7);
    const bool o22 = !(n10 && n16);
    const bool o23 = !(n16 && n19);
    const auto out = sim.output_values();
    EXPECT_EQ(out[0], o22) << "v=" << v;
    EXPECT_EQ(out[1], o23) << "v=" << v;
  }
}

TEST_F(IscasTest, C17TimingAndHardening) {
  const auto c17 = parse_bench_string(kC17, lib_, "c17");
  const auto sta = run_sta(c17);
  // Longest path is three NAND2 levels.
  EXPECT_GT(sta.dmax.value(), 3 * 12.0);
  EXPECT_LT(sta.dmax.value(), 150.0);

  const auto design = core::harden(c17, core::ProtectionParams::q100());
  EXPECT_EQ(core::protected_ff_count(c17), 2);
  // c17 is far too fast for the full 500 ps envelope.
  EXPECT_FALSE(design.full_designed_protection);
}

TEST_F(IscasTest, S27Structure) {
  const auto s27 = parse_bench_string(kS27, lib_, "s27");
  const auto s = s27.stats();
  EXPECT_EQ(s.num_gates, 10u);
  EXPECT_EQ(s.num_flip_flops, 3u);
  EXPECT_EQ(s.num_primary_inputs, 4u);
  EXPECT_EQ(s.num_primary_outputs, 1u);
}

TEST_F(IscasTest, S27KnownStateEvolution) {
  // From the all-zero state with inputs G0..G3 = 0: G14=1, G8=AND(1,0)=0,
  // G12=NOR(0,0)=1, G15=OR(1,0)=1, G16=OR(0,0)=0, G9=NAND(0,1)=1,
  // G11=NOR(0,1)=0, G17=NOT(0)=1, G10=NOR(1,0)=0, G13=NAND(0,1)=1.
  const auto s27 = parse_bench_string(kS27, lib_, "s27");
  sim::LogicSim sim(s27);
  sim.set_inputs({false, false, false, false});
  sim.evaluate();
  EXPECT_TRUE(sim.output_values()[0]);  // G17 = 1
  sim.clock();
  // Next state: G5←G10=0, G6←G11=0, G7←G13=1.
  const auto state = sim.ff_state();
  EXPECT_FALSE(state[0]);
  EXPECT_FALSE(state[1]);
  EXPECT_TRUE(state[2]);
}

TEST_F(IscasTest, S27ProtectedCampaign) {
  const auto s27 = parse_bench_string(kS27, lib_, "s27");
  const auto params = core::ProtectionParams::q100();
  // s27 is tiny; the clock period is set by the protection path (Eq. 6).
  const Picoseconds period = core::min_clock_period_for_delta(params);

  core::CampaignOptions options;
  options.runs = 60;
  options.cycles_per_run = 12;
  options.glitch_width = Picoseconds(400.0);
  options.seed = 2027;
  const auto report =
      core::run_functional_campaign(s27, params, period, options);
  EXPECT_EQ(report.protected_failures, 0u);
  EXPECT_GT(report.unprotected_failures, 0u);
}

TEST_F(IscasTest, S27HardenedSystemElaborates) {
  const auto s27 = parse_bench_string(kS27, lib_, "s27");
  const auto sys = core::elaborate_hardened_system(s27);
  // 3 system + 3 shadow + EQGLBF.
  EXPECT_EQ(sys.netlist.num_flip_flops(), 7u);
  sim::LogicSim sim(sys.netlist);
  // Clean run: EQGLB settles high after the arming cycle and stays there.
  for (int i = 0; i < 10; ++i) {
    sim.set_inputs({(i % 2) == 0, false, true, (i % 3) == 0});
    sim.evaluate();
    if (i > 0) {
      EXPECT_TRUE(sim.value(sys.eqglb)) << "cycle " << i;
    }
    sim.clock();
  }
}

}  // namespace
}  // namespace cwsp
