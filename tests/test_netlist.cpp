#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace cwsp {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(NetlistTest, BuildSmallCombinationalBlock) {
  Netlist n(lib_, "half_adder");
  const NetId a = n.add_primary_input("a");
  const NetId b = n.add_primary_input("b");
  n.add_gate(lib_.cell_for(CellKind::kXor2), {a, b}, "sum");
  n.add_gate(lib_.cell_for(CellKind::kAnd2), {a, b}, "carry");
  n.mark_primary_output(*n.find_net("sum"));
  n.mark_primary_output(*n.find_net("carry"));
  n.validate();

  EXPECT_EQ(n.num_gates(), 2u);
  EXPECT_EQ(n.primary_inputs().size(), 2u);
  EXPECT_EQ(n.primary_outputs().size(), 2u);
  EXPECT_EQ(n.stats().num_nets, 4u);
}

TEST_F(NetlistTest, SequentialLoopIsLegal) {
  // A 1-bit toggle: q -> INV -> d -> DFF -> q. Legal because the FF breaks
  // the cycle.
  Netlist n(lib_, "toggle");
  const NetId d = n.add_net("d");
  const FlipFlopId ff = n.add_flip_flop_onto(d, n.add_net("q"));
  n.add_gate_onto(lib_.cell_for(CellKind::kInv), {n.flip_flop(ff).q}, d);
  n.mark_primary_output(n.flip_flop(ff).q);
  EXPECT_NO_THROW(n.validate());
}

TEST_F(NetlistTest, CombinationalCycleRejected) {
  Netlist n(lib_, "cyclic");
  const NetId x = n.add_net("x");
  const NetId y = n.add_net("y");
  n.add_gate_onto(lib_.cell_for(CellKind::kInv), {x}, y);
  n.add_gate_onto(lib_.cell_for(CellKind::kInv), {y}, x);
  n.mark_primary_output(x);
  EXPECT_THROW(n.validate(), Error);
}

TEST_F(NetlistTest, UndrivenNetRejected) {
  Netlist n(lib_, "undriven");
  const NetId a = n.add_primary_input("a");
  const NetId ghost = n.add_net("ghost");
  n.add_gate(lib_.cell_for(CellKind::kAnd2), {a, ghost}, "y");
  n.mark_primary_output(*n.find_net("y"));
  EXPECT_THROW(n.validate(), Error);
}

TEST_F(NetlistTest, DanglingGateOutputRejected) {
  Netlist n(lib_, "dangling");
  const NetId a = n.add_primary_input("a");
  n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "unused");
  EXPECT_THROW(n.validate(), Error);
}

TEST_F(NetlistTest, UnusedPrimaryInputAllowed) {
  // Optimisation passes can strand inputs; the interface is preserved.
  Netlist n(lib_, "unused_pi");
  n.add_primary_input("spare");
  const NetId a = n.add_primary_input("a");
  const GateId g = n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "y");
  n.mark_primary_output(n.gate(g).output);
  EXPECT_NO_THROW(n.validate());
}

TEST_F(NetlistTest, DoubleDriverRejected) {
  Netlist n(lib_, "contention");
  const NetId a = n.add_primary_input("a");
  const NetId y = n.add_net("y");
  n.add_gate_onto(lib_.cell_for(CellKind::kInv), {a}, y);
  EXPECT_THROW(n.add_gate_onto(lib_.cell_for(CellKind::kBuf), {a}, y), Error);
}

TEST_F(NetlistTest, ArityMismatchRejected) {
  Netlist n(lib_, "arity");
  const NetId a = n.add_primary_input("a");
  EXPECT_THROW(n.add_gate(lib_.cell_for(CellKind::kNand2), {a}, "y"), Error);
}

TEST_F(NetlistTest, DuplicateNetNameRejected) {
  Netlist n(lib_, "dup");
  n.add_primary_input("a");
  EXPECT_THROW(n.add_primary_input("a"), Error);
  EXPECT_THROW(n.add_net("a"), Error);
}

TEST_F(NetlistTest, TopologicalOrderRespectsDependencies) {
  Netlist n(lib_, "chain");
  NetId prev = n.add_primary_input("in");
  for (int i = 0; i < 10; ++i) {
    const GateId g = n.add_gate(lib_.cell_for(CellKind::kInv), {prev},
                                "n" + std::to_string(i));
    prev = n.gate(g).output;
  }
  n.mark_primary_output(prev);
  const auto order = n.topological_order();
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(order[i].value(), order[i + 1].value());
  }
}

TEST_F(NetlistTest, TopologicalOrderIsMemoizedAndInvalidatedOnAppend) {
  Netlist n(lib_, "memo");
  const NetId a = n.add_primary_input("a");
  const GateId g1 = n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "y1");

  const std::vector<GateId>& first = n.topological_order();
  ASSERT_EQ(first.size(), 1u);
  // Memoized: repeat queries return the same cached vector.
  EXPECT_EQ(&first, &n.topological_order());

  // Structural append invalidates the cache; the new order contains the
  // new gate, after its producer.
  const GateId g2 = n.add_gate(lib_.cell_for(CellKind::kInv),
                               {n.gate(g1).output}, "y2");
  const std::vector<GateId>& second = n.topological_order();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0], g1);
  EXPECT_EQ(second[1], g2);
}

TEST_F(NetlistTest, LoadAccountsPinsAndWire) {
  Netlist n(lib_, "load");
  const NetId a = n.add_primary_input("a");
  n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "y1");
  n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "y2");
  n.mark_primary_output(*n.find_net("y1"));
  n.mark_primary_output(*n.find_net("y2"));
  const Cell& inv = lib_.cell(lib_.cell_for(CellKind::kInv));
  const double expected = 2.0 * inv.input_capacitance().value() +
                          2.0 * lib_.wire_capacitance_per_fanout().value();
  EXPECT_DOUBLE_EQ(n.load_of(a).value(), expected);
}

TEST_F(NetlistTest, SameNetOnTwoPinsCountsTwice) {
  Netlist n(lib_, "two_pins");
  const NetId a = n.add_primary_input("a");
  n.add_gate(lib_.cell_for(CellKind::kAnd2), {a, a}, "y");
  n.mark_primary_output(*n.find_net("y"));
  const Cell& and2 = lib_.cell(lib_.cell_for(CellKind::kAnd2));
  // The gate appears once per connected pin in the fanout list, so the net
  // sees two pin caps and two wire segments.
  const double expected = 2.0 * and2.input_capacitance().value() +
                          2.0 * lib_.wire_capacitance_per_fanout().value();
  EXPECT_DOUBLE_EQ(n.load_of(a).value(), expected);
}

TEST_F(NetlistTest, ConstantNets) {
  Netlist n(lib_, "consts");
  const NetId one = n.add_constant(true, "vdd");
  const NetId a = n.add_primary_input("a");
  n.add_gate(lib_.cell_for(CellKind::kAnd2), {a, one}, "y");
  n.mark_primary_output(*n.find_net("y"));
  n.validate();
  EXPECT_EQ(n.net(one).driver_kind, DriverKind::kConstant);
  EXPECT_TRUE(n.net(one).constant_value);
}

TEST_F(NetlistTest, StatsAndArea) {
  Netlist n(lib_, "stats");
  const NetId a = n.add_primary_input("a");
  const GateId g = n.add_gate(lib_.cell_for(CellKind::kInv), {a}, "y");
  const FlipFlopId ff = n.add_flip_flop(n.gate(g).output, "q");
  n.mark_primary_output(n.flip_flop(ff).q);
  n.validate();
  const auto s = n.stats();
  EXPECT_EQ(s.num_gates, 1u);
  EXPECT_EQ(s.num_flip_flops, 1u);
  EXPECT_GT(s.sequential_area.value(), 0.0);
  EXPECT_DOUBLE_EQ(s.total_area.value(),
                   s.combinational_area.value() + s.sequential_area.value());
  EXPECT_DOUBLE_EQ(n.total_area().value(), s.total_area.value());
}

TEST_F(NetlistTest, MarkPrimaryOutputIsIdempotent) {
  Netlist n(lib_, "po");
  const NetId a = n.add_primary_input("a");
  n.mark_primary_output(a);
  n.mark_primary_output(a);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
}

}  // namespace
}  // namespace cwsp
