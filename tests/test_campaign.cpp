#include "campaign/campaign.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "netlist/bench_parser.hpp"

namespace cwsp::campaign {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (removed on construction so reruns
/// start clean; the pid keeps concurrent ctest invocations apart).
fs::path scratch_dir(const std::string& label) {
  const fs::path dir = fs::temp_directory_path() /
                       ("cwsp_test_campaign_" + label + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

class CampaignTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(q1)
OUTPUT(y)
t1 = NAND(a, q2)
t2 = XOR(t1, b)
t3 = OR(t2, c)
d1 = NOT(t3)
q1 = DFF(d1)
q2 = DFF(t1)
y  = AND(q1, q2)
)",
                                        lib_);
  core::ProtectionParams params_ = core::ProtectionParams::q100();
  Picoseconds period_{2000.0};

  [[nodiscard]] set::StrikePlan mixed_plan(std::uint64_t seed) const {
    set::StrikePlanOptions po;
    po.functional_strikes = 12;
    po.protection_path_strikes = 4;
    po.clock_edge_strikes = 4;
    po.out_of_envelope_strikes = 4;
    po.cycles_per_run = 10;
    po.clock_period = period_;
    po.out_of_envelope_width = params_.delta + Picoseconds(400.0);
    return set::build_strike_plan(netlist_, po, seed);
  }

  [[nodiscard]] CampaignEngine engine() const {
    return CampaignEngine(netlist_, params_, period_);
  }
};

TEST_F(CampaignTest, ReportIsByteIdenticalAcrossJobCounts) {
  const auto plan = mixed_plan(9);
  EngineOptions a;
  a.seed = 9;
  a.cycles_per_run = 10;
  a.jobs = 1;
  EngineOptions b = a;
  b.jobs = 8;
  const auto ra = engine().run(plan, a);
  const auto rb = engine().run(plan, b);
  EXPECT_EQ(format_campaign_json(ra, plan, netlist_, a, period_),
            format_campaign_json(rb, plan, netlist_, b, period_));
  EXPECT_EQ(ra.report.bubbles, rb.report.bubbles);
  EXPECT_EQ(ra.report.protected_failures, rb.report.protected_failures);
  EXPECT_EQ(ra.unexpected_escapes, rb.unexpected_escapes);
}

TEST_F(CampaignTest, ResumedCampaignMatchesUninterruptedRun) {
  const auto dir = scratch_dir("resume");
  const auto plan = mixed_plan(3);
  const std::string journal = (dir / "campaign.journal").string();

  EngineOptions full;
  full.seed = 3;
  full.cycles_per_run = 10;
  full.jobs = 2;
  const auto uninterrupted = engine().run(plan, full);

  EngineOptions interrupted = full;
  interrupted.journal_path = journal;
  interrupted.stop_after = 7;
  const auto partial = engine().run(plan, interrupted);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.executed, 7u);
  EXPECT_EQ(campaign_status(partial), CampaignStatus::kInterrupted);

  EngineOptions resume = full;
  resume.journal_path = journal;
  resume.resume = true;
  const auto resumed = engine().run(plan, resume);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.resumed, 7u);
  EXPECT_EQ(resumed.executed, plan.size() - 7u);
  // The journal must restore the exact per-strike outcomes: the merged
  // report is byte-identical to the run that was never interrupted.
  EXPECT_EQ(format_campaign_json(resumed, plan, netlist_, resume, period_),
            format_campaign_json(uninterrupted, plan, netlist_, full,
                                 period_));
  fs::remove_all(dir);
}

TEST_F(CampaignTest, InjectedHangDegradesToInconclusiveTimeout) {
  const auto plan = mixed_plan(5);
  EngineOptions opts;
  opts.seed = 5;
  opts.cycles_per_run = 10;
  opts.jobs = 2;
  opts.timeout_ms = 50.0;
  // Strike 2 hangs until the watchdog cancels it — the failure mode a
  // livelocked simulator would produce.
  opts.test_hook = [](std::size_t index, const sim::CancelToken& token) {
    if (index != 2) return;
    while (!token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw sim::CancelledError("test hook observed cancellation");
  };
  const auto result = engine().run(plan, opts);
  ASSERT_EQ(result.strikes.size(), plan.size());
  EXPECT_EQ(result.strikes[2].status, StrikeStatus::kTimeout);
  EXPECT_NE(result.strikes[2].diagnostic.find("budget"), std::string::npos);
  EXPECT_EQ(result.report.timeouts, 1u);
  EXPECT_EQ(result.report.inconclusive, 1u);
  // The hang is isolated: every other strike still ran to a verdict.
  EXPECT_FALSE(result.interrupted);
  for (const auto& s : result.strikes) {
    EXPECT_TRUE(s.completed());
    if (s.index != 2) {
      EXPECT_TRUE(s.conclusive());
    }
  }
}

TEST_F(CampaignTest, SimulatorExceptionIsolatedToOneStrike) {
  const auto plan = mixed_plan(6);
  EngineOptions opts;
  opts.seed = 6;
  opts.cycles_per_run = 10;
  opts.jobs = 2;
  opts.test_hook = [](std::size_t index, const sim::CancelToken&) {
    if (index == 1) throw std::runtime_error("injected simulator fault");
  };
  const auto result = engine().run(plan, opts);
  ASSERT_EQ(result.strikes.size(), plan.size());
  EXPECT_EQ(result.strikes[1].status, StrikeStatus::kError);
  EXPECT_NE(result.strikes[1].diagnostic.find("injected simulator fault"),
            std::string::npos);
  EXPECT_EQ(result.report.inconclusive, 1u);
  EXPECT_EQ(result.report.timeouts, 0u);
  EXPECT_FALSE(result.interrupted);
}

TEST_F(CampaignTest, EscapeIsMinimizedToReplayableArtifact) {
  const auto dir = scratch_dir("repro");
  set::StrikePlanOptions po;
  po.functional_strikes = 0;
  po.out_of_envelope_strikes = 12;  // > δ: escapes expected
  po.cycles_per_run = 10;
  po.clock_period = period_;
  po.out_of_envelope_width = params_.delta + Picoseconds(400.0);
  const auto plan = set::build_strike_plan(netlist_, po, 1);

  EngineOptions opts;
  opts.seed = 1;
  opts.cycles_per_run = 10;
  opts.jobs = 2;
  opts.minimize_escapes = true;
  opts.artifact_dir = dir.string();
  const auto result = engine().run(plan, opts);
  ASSERT_GT(result.report.protected_failures, 0u)
      << "out-of-envelope strikes must produce at least one escape";
  // Expected escapes never count against the coverage claim.
  EXPECT_EQ(result.unexpected_escapes, 0u);
  EXPECT_EQ(campaign_status(result), CampaignStatus::kOk);
  ASSERT_EQ(result.repros.size(), result.report.protected_failures);
  for (const EscapeRepro& repro : result.repros) {
    EXPECT_LE(repro.minimized.strike.width.value(),
              repro.original_width.value());
    // Still out of envelope: the minimizer cannot shrink below δ, or it
    // would have found a genuine (unexpected) escape.
    EXPECT_GT(repro.minimized.strike.width.value(), params_.delta.value());
    ASSERT_FALSE(repro.spec_path.empty());
    EXPECT_TRUE(fs::exists(repro.spec_path));
    EXPECT_TRUE(fs::exists(repro.bench_path));
    // A fresh parse + fresh simulator must reproduce the escape.
    EXPECT_TRUE(replay_repro(repro.spec_path, lib_));
  }
  fs::remove_all(dir);
}

TEST_F(CampaignTest, ZeroStrikePlanIsInvalidNotVacuouslyCovered) {
  set::StrikePlanOptions po;
  po.functional_strikes = 0;
  const auto plan = set::build_strike_plan(netlist_, po, 1);
  ASSERT_TRUE(plan.empty());
  EngineOptions opts;
  const auto result = engine().run(plan, opts);
  EXPECT_FALSE(result.report.valid());
  EXPECT_DOUBLE_EQ(result.report.protected_coverage_pct(), 0.0);
  EXPECT_EQ(campaign_status(result), CampaignStatus::kInvalid);
}

TEST_F(CampaignTest, ResumeRejectsJournalFromDifferentCampaign) {
  const auto dir = scratch_dir("fingerprint");
  const std::string journal = (dir / "campaign.journal").string();
  const auto plan = mixed_plan(3);
  EngineOptions opts;
  opts.seed = 3;
  opts.cycles_per_run = 10;
  opts.journal_path = journal;
  (void)engine().run(plan, opts);

  // Same plan, different stimulus seed → different fingerprint.
  EngineOptions other = opts;
  other.seed = 4;
  other.resume = true;
  EXPECT_THROW((void)engine().run(plan, other), Error);
  fs::remove_all(dir);
}

TEST_F(CampaignTest, JournalReaderSkipsTruncatedFinalLine) {
  const auto dir = scratch_dir("journal");
  const std::string path = (dir / "truncated.journal").string();
  {
    JournalWriter writer(path, 0xabcdef12u, 5, /*append=*/false);
    StrikeResult r;
    r.index = 0;
    r.status = StrikeStatus::kCovered;
    r.bubbles = 2;
    writer.append(r);
    r.index = 1;
    r.status = StrikeStatus::kEscape;
    r.diagnostic = "1 corrupted commit(s)";
    writer.append(r);
  }
  {
    // Emulate a crash mid-write: a strike line cut off without a newline.
    std::ofstream out(path, std::ios::app);
    out << "strike idx=2 status=cov";
  }
  const Journal journal = read_journal(path);
  EXPECT_EQ(journal.fingerprint, 0xabcdef12u);
  EXPECT_EQ(journal.total_strikes, 5u);
  ASSERT_EQ(journal.results.size(), 2u);
  EXPECT_EQ(journal.results[0].index, 0u);
  EXPECT_EQ(journal.results[0].bubbles, 2u);
  EXPECT_EQ(journal.results[1].status, StrikeStatus::kEscape);
  EXPECT_EQ(journal.results[1].diagnostic, "1 corrupted commit(s)");
  fs::remove_all(dir);
}

TEST_F(CampaignTest, FreshJournalIsCreatedAtomically) {
  const auto dir = scratch_dir("journal_atomic");
  const std::string path = (dir / "atomic.journal").string();

  // A previous (resumable) journal with strike lines.
  {
    JournalWriter writer(path, 0x1111u, 3, /*append=*/false);
    StrikeResult r;
    r.index = 0;
    writer.append(r);
  }
  // Starting a fresh campaign replaces it with a new valid header and
  // leaves no staging file behind — at no point does `path` hold a
  // truncated journal.
  {
    JournalWriter writer(path, 0x2222u, 7, /*append=*/false);
  }
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  const Journal journal = read_journal(path);
  EXPECT_EQ(journal.fingerprint, 0x2222u);
  EXPECT_EQ(journal.total_strikes, 7u);
  EXPECT_TRUE(journal.results.empty());
  fs::remove_all(dir);
}

TEST_F(CampaignTest, AppendModePreservesExistingJournal) {
  const auto dir = scratch_dir("journal_append");
  const std::string path = (dir / "resume.journal").string();
  {
    JournalWriter writer(path, 0x3333u, 4, /*append=*/false);
    StrikeResult r;
    r.index = 0;
    writer.append(r);
  }
  {
    // The resume path must append, never restage: the header and prior
    // strikes survive.
    JournalWriter writer(path, 0x3333u, 4, /*append=*/true);
    StrikeResult r;
    r.index = 1;
    writer.append(r);
  }
  const Journal journal = read_journal(path);
  EXPECT_EQ(journal.fingerprint, 0x3333u);
  ASSERT_EQ(journal.results.size(), 2u);
  EXPECT_EQ(journal.results[0].index, 0u);
  EXPECT_EQ(journal.results[1].index, 1u);
  fs::remove_all(dir);
}

TEST_F(CampaignTest, CancelTokenInterruptsBetweenStrikes) {
  sim::CancelToken cancel;
  cancel.cancel();  // cancelled before the first claim
  EngineOptions opts;
  opts.cycles_per_run = 10;
  opts.cancel = &cancel;
  const CampaignEngine engine(netlist_, params_, period_);
  const auto result = engine.run(mixed_plan(5), opts);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.executed, 0u);
  EXPECT_EQ(campaign_status(result), CampaignStatus::kInterrupted);
}

TEST_F(CampaignTest, SharedKernelContextMatchesPrivateBuild) {
  const auto context = sim::CompiledKernelContext::build(netlist_);
  EngineOptions opts;
  opts.cycles_per_run = 10;
  const CampaignEngine private_engine(netlist_, params_, period_);
  const CampaignEngine shared_engine(netlist_, params_, period_, context);
  const auto plan = mixed_plan(9);
  const auto a = private_engine.run(plan, opts);
  const auto b = shared_engine.run(plan, opts);
  ASSERT_EQ(a.strikes.size(), b.strikes.size());
  for (std::size_t i = 0; i < a.strikes.size(); ++i) {
    EXPECT_EQ(a.strikes[i].status, b.strikes[i].status) << "strike " << i;
    EXPECT_EQ(a.strikes[i].bubbles, b.strikes[i].bubbles) << "strike " << i;
  }
}

TEST_F(CampaignTest, StrikeInputsAreDeterministicPerIndex) {
  const auto a = CampaignEngine::strike_inputs(netlist_, 10, 42, 3);
  const auto b = CampaignEngine::strike_inputs(netlist_, 10, 42, 3);
  const auto c = CampaignEngine::strike_inputs(netlist_, 10, 42, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a[0].size(), netlist_.primary_inputs().size());
}

}  // namespace
}  // namespace cwsp::campaign
