#include "bencharness/benchmark_data.hpp"

#include <gtest/gtest.h>

#include "cell/calibration.hpp"
#include "common/error.hpp"

namespace cwsp::bench {
namespace {

TEST(BenchmarkData, TableMembershipCounts) {
  // Table 1 has 8 rows, Table 2 has 11, Table 3 has 10 (paper).
  std::size_t t1 = 0;
  std::size_t t2 = 0;
  for (const auto& s : overhead_benchmarks()) {
    if (s.table1_q150.has_value()) ++t1;
    if (s.table2_q100.has_value()) ++t2;
  }
  EXPECT_EQ(t1, 8u);
  EXPECT_EQ(t2, 11u);
  EXPECT_EQ(fast_benchmarks().size(), 10u);
}

TEST(BenchmarkData, FindByName) {
  EXPECT_EQ(find_benchmark("alu2").num_outputs, 6);
  EXPECT_EQ(find_benchmark("C7552").num_outputs, 108);
  EXPECT_EQ(find_benchmark("apex4").num_outputs, 19);
  EXPECT_THROW((void)(find_benchmark("nonesuch")), cwsp::Error);
}

TEST(BenchmarkData, PaperAreaOverheadsConsistentWithCalibration) {
  // For every published row, regular + n·p_Q + c + tree-extra must match
  // the published hardened area within 0.05 µm².
  auto tree_extra = [](int n) {
    if (n <= cal::kTreeSingleLevelMax) return 0.0;
    const int chunks = (n + cal::kTreeChunk - 1) / cal::kTreeChunk;
    return cal::kTreeSecondLevelPerInput.value() * chunks;
  };
  for (const auto& s : overhead_benchmarks()) {
    if (s.table1_q150.has_value()) {
      const double predicted =
          s.regular_area_um2 +
          s.num_outputs * cal::kPerFfProtectionAreaQHigh.value() +
          cal::kGlobalProtectionArea.value() + tree_extra(s.num_outputs);
      EXPECT_NEAR(predicted, s.table1_q150->hardened_area_um2, 0.05)
          << s.name << " (Q=150)";
    }
    if (s.table2_q100.has_value()) {
      const double predicted =
          s.regular_area_um2 +
          s.num_outputs * cal::kPerFfProtectionAreaQLow.value() +
          cal::kGlobalProtectionArea.value() + tree_extra(s.num_outputs);
      EXPECT_NEAR(predicted, s.table2_q100->hardened_area_um2, 0.05)
          << s.name << " (Q=100)";
    }
  }
}

TEST(BenchmarkData, PaperOverheadPercentagesConsistent) {
  for (const auto& s : overhead_benchmarks()) {
    if (s.table1_q150.has_value()) {
      const double pct = (s.table1_q150->hardened_area_um2 /
                              s.regular_area_um2 -
                          1.0) *
                         100.0;
      EXPECT_NEAR(pct, s.table1_q150->area_overhead_pct, 0.05) << s.name;
    }
  }
}

TEST(BenchmarkData, Table3RowsHaveDmaxBelow1415) {
  // Table 3 exists because these circuits cannot host δ = 500 ps.
  for (const auto& s : fast_benchmarks()) {
    EXPECT_LT(s.dmax_ps, 1415.0) << s.name;
    ASSERT_TRUE(s.table3_custom_delta.has_value()) << s.name;
  }
}

TEST(BenchmarkData, InferredFlagsLimitedToLgsynthMismatches) {
  for (const auto& s : overhead_benchmarks()) {
    EXPECT_FALSE(s.ff_count_inferred) << s.name;
  }
  std::size_t inferred = 0;
  for (const auto& s : fast_benchmarks()) {
    if (s.ff_count_inferred) ++inferred;
  }
  EXPECT_EQ(inferred, 6u);  // apex3, b11_LoptLC, ex5p, k2, apex1, ex4p
}

}  // namespace
}  // namespace cwsp::bench
