#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_parser.hpp"

namespace cwsp::sim {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist toggle_ = parse_bench_string(R"(
INPUT(en)
OUTPUT(q)
d = XOR(en, q)
q = DFF(d)
)",
                                       lib_);
};

TEST_F(TraceTest, RecordsCycleValues) {
  LogicSim sim(toggle_);
  TraceRecorder trace(toggle_, {"en", "d", "q"});
  for (int cycle = 0; cycle < 6; ++cycle) {
    sim.set_inputs({true});
    sim.evaluate();
    trace.sample(sim);
    sim.clock();
  }
  EXPECT_EQ(trace.num_cycles(), 6u);
  // q toggles 0,1,0,1,...
  EXPECT_FALSE(trace.value(2, 0));
  EXPECT_TRUE(trace.value(2, 1));
  EXPECT_FALSE(trace.value(2, 2));
  // d = XOR(1, q) = !q.
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_EQ(trace.value(1, c), !trace.value(2, c));
  }
}

TEST_F(TraceTest, VcdContainsHeaderAndChanges) {
  LogicSim sim(toggle_);
  TraceRecorder trace(toggle_, {"q"});
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.set_inputs({true});
    sim.evaluate();
    trace.sample(sim);
    sim.clock();
  }
  std::ostringstream os;
  trace.write_vcd(os, "toggle");
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! q $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  // q changes every cycle → a change record at every timestamp.
  EXPECT_NE(vcd.find("#0\n0!"), std::string::npos);
  EXPECT_NE(vcd.find("#1\n1!"), std::string::npos);
  EXPECT_NE(vcd.find("#2\n0!"), std::string::npos);
}

TEST_F(TraceTest, VcdOmitsUnchangedTimestamps) {
  LogicSim sim(toggle_);
  TraceRecorder trace(toggle_, {"en"});
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.set_inputs({true});  // constant signal
    sim.evaluate();
    trace.sample(sim);
    sim.clock();
  }
  std::ostringstream os;
  trace.write_vcd(os, "t");
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("#0\n1!"), std::string::npos);
  EXPECT_EQ(vcd.find("#1\n"), std::string::npos);  // no further changes
}

TEST_F(TraceTest, AsciiWavesRender) {
  LogicSim sim(toggle_);
  TraceRecorder trace(toggle_, {"q", "en"});
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.set_inputs({true});
    sim.evaluate();
    trace.sample(sim);
    sim.clock();
  }
  const std::string waves = trace.ascii_waves();
  EXPECT_NE(waves.find("q  : _#_#"), std::string::npos);
  EXPECT_NE(waves.find("en : ####"), std::string::npos);
}

TEST_F(TraceTest, UnknownNetRejected) {
  EXPECT_THROW(TraceRecorder(toggle_, {"phantom"}), Error);
}

TEST_F(TraceTest, GlitchWaveformVcd) {
  DigitalWaveform w(false);
  w.xor_pulse(100.0, 400.0);
  std::ostringstream os;
  write_waveform_vcd(w, "set_pulse", 1000.0, os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0\n0!"), std::string::npos);
  EXPECT_NE(vcd.find("#100\n1!"), std::string::npos);
  EXPECT_NE(vcd.find("#400\n0!"), std::string::npos);
  EXPECT_NE(vcd.find("#1000"), std::string::npos);
}

}  // namespace
}  // namespace cwsp::sim
