// Property sweeps over the recovery protocol: for any strike scenario
// within the protection envelope, committed outputs must equal golden and
// the cycle accounting must balance.

#include <gtest/gtest.h>

#include "cwsp/protection_sim.hpp"
#include "netlist/bench_parser.hpp"

namespace cwsp::core {
namespace {

struct ProtocolCase {
  std::uint64_t seed;
  double width_ps;
  StrikeTarget target;
};

class ProtocolProperties : public ::testing::TestWithParam<ProtocolCase> {
 protected:
  CellLibrary lib_ = make_default_library();
  Netlist netlist_ = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(q1)
OUTPUT(y)
t1 = NAND(a, q2)
t2 = XOR(t1, b)
t3 = MUX(t2, c, q1)
d1 = NOT(t3)
q1 = DFF(d1)
q2 = DFF(t1)
y  = OR(q1, q2)
)",
                                        lib_);
};

TEST_P(ProtocolProperties, InEnvelopeStrikesAlwaysRecover) {
  const auto& tc = GetParam();
  const auto params = ProtectionParams::q100();
  ASSERT_LE(tc.width_ps, params.delta.value());
  ProtectionSim sim(netlist_, params, Picoseconds(2000.0));
  Rng rng(tc.seed);
  const auto sites = set::strike_sites(netlist_);

  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6 + rng.next_below(8);
    std::vector<std::vector<bool>> inputs(n);
    for (auto& v : inputs) {
      v = {rng.next_bool(), rng.next_bool(), rng.next_bool()};
    }
    ScheduledStrike strike;
    strike.cycle = rng.next_below(n);
    strike.target = tc.target;
    strike.ff_index = rng.next_below(2);
    strike.strike.node = sites[rng.next_below(sites.size())];
    strike.strike.start =
        Picoseconds(rng.next_double_in(0.0, 1999.0));
    strike.strike.width = Picoseconds(tc.width_ps);

    const auto r = sim.run(inputs, {strike});
    // Core invariants.
    EXPECT_TRUE(r.recovered()) << "seed " << tc.seed << " trial " << trial;
    EXPECT_EQ(r.committed_outputs, r.golden_outputs);
    EXPECT_EQ(r.committed_outputs.size(), inputs.size());
    EXPECT_EQ(r.total_cycles, inputs.size() + r.bubbles);
    EXPECT_EQ(r.bubbles, r.detected_errors + r.spurious_recomputes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FunctionalSweep, ProtocolProperties,
    ::testing::Values(
        ProtocolCase{11, 100.0, StrikeTarget::kFunctional},
        ProtocolCase{12, 250.0, StrikeTarget::kFunctional},
        ProtocolCase{13, 400.0, StrikeTarget::kFunctional},
        ProtocolCase{14, 500.0, StrikeTarget::kFunctional},
        ProtocolCase{15, 499.0, StrikeTarget::kEqChecker},
        ProtocolCase{16, 300.0, StrikeTarget::kEqChecker},
        ProtocolCase{17, 400.0, StrikeTarget::kEqglbfDff},
        ProtocolCase{18, 400.0, StrikeTarget::kCwStarDff},
        ProtocolCase{19, 500.0, StrikeTarget::kCwspOutput},
        ProtocolCase{20, 50.0, StrikeTarget::kFunctional}));

class BubbleAccounting : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_P(BubbleAccounting, MultiStrikeRunsBalance) {
  const auto netlist = parse_bench_string(R"(
INPUT(a)
OUTPUT(q)
d = XOR(a, q)
q = DFF(d)
)",
                                          lib_, "toggle");
  const auto params = ProtectionParams::q100();
  ProtectionSim sim(netlist, params, Picoseconds(1600.0));
  Rng rng(GetParam());

  std::vector<std::vector<bool>> inputs(24);
  for (auto& v : inputs) v = {rng.next_bool()};

  // One strike every 4th cycle (respecting the one-per-two-cycles
  // assumption even after bubbles shift cycles).
  std::vector<ScheduledStrike> strikes;
  for (std::size_t c = 1; c < 40; c += 4) {
    ScheduledStrike s;
    s.cycle = c;
    s.target = StrikeTarget::kFunctional;
    s.strike.node = *netlist.find_net("d");
    s.strike.start = Picoseconds(rng.next_double_in(1200.0, 1590.0));
    s.strike.width = Picoseconds(350.0);
    strikes.push_back(s);
  }
  const auto r = sim.run(inputs, strikes);
  EXPECT_TRUE(r.recovered()) << "seed " << GetParam();
  EXPECT_EQ(r.committed_outputs, r.golden_outputs);
  EXPECT_EQ(r.total_cycles, inputs.size() + r.bubbles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BubbleAccounting,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

}  // namespace
}  // namespace cwsp::core
