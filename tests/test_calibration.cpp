// Re-derives every reverse-engineered calibration constant from the
// paper's published numbers, so a change that breaks table reproduction
// fails here first with a clear message.

#include "cell/calibration.hpp"

#include <gtest/gtest.h>

namespace cwsp {
namespace {

TEST(Calibration, DelayPenaltyMatchesFlipFlopRetiming) {
  // Hardened period = Dmax + extra-D-load + setup' + clk→Q'
  // Regular period  = Dmax + setup + clk→Q
  const double regular = cal::kSetupRegular.value() + cal::kClkQRegular.value();
  const double hardened = cal::kExtraDLoadDelay.value() +
                          cal::kSetupModified.value() +
                          cal::kClkQModified.value();
  EXPECT_DOUBLE_EQ(regular, 109.0);
  EXPECT_DOUBLE_EQ(hardened, 120.5);
  EXPECT_DOUBLE_EQ(hardened - regular, cal::kHardeningDelayPenalty.value());
}

TEST(Calibration, DelayRowsOfTable1Reproduce) {
  // Table 1: alu2 Dmax=1624.53789 → regular 1733.53789, hardened 1745.03789.
  const double dmax = 1624.53789;
  EXPECT_NEAR(dmax + 109.0, 1733.53789, 1e-9);
  EXPECT_NEAR(dmax + 120.5, 1745.03789, 1e-9);
}

TEST(Calibration, DeltaConstantsMatchMinDmax) {
  // Paper §4: min Dmax = 1415 ps (δ=500 ps) and 1605 ps (δ=600 ps), i.e.
  // Δ = minDmax − 2δ.
  const double delta_q_low = cal::kMinDmaxQLow.value() - 2.0 * 500.0;
  const double delta_q_high = cal::kMinDmaxQHigh.value() - 2.0 * 600.0;
  EXPECT_DOUBLE_EQ(delta_q_low, 415.0);
  EXPECT_DOUBLE_EQ(delta_q_high, 405.0);

  // Δ decomposition (Eq. 5) must be internally consistent.
  auto delta_from_parts = [](double d_cwsp) {
    return cal::kClkQEq.value() + cal::kClkQDff2.value() + d_cwsp -
           cal::kClkQModified.value() + cal::kDelayMux.value() +
           cal::kSetupEq.value() + cal::kDelayAnd1.value();
  };
  EXPECT_DOUBLE_EQ(delta_from_parts(cal::kDCwspQLow.value()), 415.0);
  EXPECT_DOUBLE_EQ(delta_from_parts(cal::kDCwspQHigh.value()), 405.0);
}

TEST(Calibration, UnitAreaFromCwspUpsizing) {
  // p150 − p100 = CWSP upsizing (84 → 112 W·L units) + 2 extra CLK_DEL
  // segments (2 min inverters = 4 units) ⇒ 32 units = 0.1519 µm².
  const double cwsp_low =
      2.0 * (cal::kCwspPmosMultQLow + cal::kCwspNmosMultQLow);
  const double cwsp_high =
      2.0 * (cal::kCwspPmosMultQHigh + cal::kCwspNmosMultQHigh);
  const double extra_segments =
      2.0 * (cal::kSegmentsClkDelQHigh - cal::kSegmentsClkDelQLow);
  const double units = (cwsp_high - cwsp_low) + extra_segments;
  EXPECT_DOUBLE_EQ(units, 32.0);
  EXPECT_NEAR(units * cal::kUnitActiveArea.value(),
              cal::kPerFfProtectionAreaQHigh.value() -
                  cal::kPerFfProtectionAreaQLow.value(),
              1e-12);
}

TEST(Calibration, PerFfAreaReproducesTable1Rows) {
  // Table 1 (Q=150 fC): overhead = n_ff · p150 + c.
  auto overhead = [](int n_ff) {
    return n_ff * cal::kPerFfProtectionAreaQHigh.value() +
           cal::kGlobalProtectionArea.value();
  };
  EXPECT_NEAR(overhead(6), 37.292225 - 28.251025, 5e-4);    // alu2
  EXPECT_NEAR(overhead(8), 65.87735 - 53.87795, 5e-4);      // alu4
  EXPECT_NEAR(overhead(3), 404.27545 - 399.67155, 5e-4);    // apex2
  EXPECT_NEAR(overhead(22), 130.5324 - 97.8256, 5e-4);      // C3540
  EXPECT_NEAR(overhead(32), 271.092025 - 223.594225, 5e-4); // C6288
  EXPECT_NEAR(overhead(35), 473.5331 - 421.598, 5e-4);      // seq
  EXPECT_NEAR(overhead(26), 74.77685 - 36.15365, 5e-4);     // C880
}

TEST(Calibration, PerFfAreaReproducesTable2Rows) {
  auto overhead = [](int n_ff) {
    return n_ff * cal::kPerFfProtectionAreaQLow.value() +
           cal::kGlobalProtectionArea.value();
  };
  EXPECT_NEAR(overhead(6), 36.380825 - 28.251025, 5e-4);    // alu2
  EXPECT_NEAR(overhead(25), 77.006925 - 43.660325, 5e-4);   // C1908
  EXPECT_NEAR(overhead(16), 86.996425 - 65.594625, 5e-4);   // dalu
  EXPECT_NEAR(overhead(32), 266.231225 - 223.594225, 5e-4); // C6288
}

TEST(Calibration, GlitchWidthsMatchPaper) {
  EXPECT_DOUBLE_EQ(cal::kGlitchWidthQLow.value(), 500.0);
  EXPECT_DOUBLE_EQ(cal::kGlitchWidthQHigh.value(), 600.0);
  EXPECT_DOUBLE_EQ(cal::kTauAlpha.value(), 200.0);
  EXPECT_DOUBLE_EQ(cal::kTauBeta.value(), 50.0);
}

TEST(Calibration, TreeStructureConstants) {
  EXPECT_EQ(cal::kTreeSingleLevelMax, 35);
  EXPECT_EQ(cal::kTreeChunk, 30);
  EXPECT_GT(cal::kTreeSecondLevelPerInput.value(), 0.0);
}

}  // namespace
}  // namespace cwsp
