// FlatNetlistView: the CSR arrays must be a faithful lowering of the
// Netlist, the topological order must match the memoized Netlist order,
// and the memoized fanout cones must equal a brute-force BFS reference.

#include <algorithm>
#include <atomic>
#include <queue>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "netlist/flat_view.hpp"
#include "netlist_fuzz.hpp"

namespace cwsp {
namespace {

const CellLibrary& library() {
  static const CellLibrary lib = make_default_library();
  return lib;
}

/// Reference cone: forward BFS over Netlist fanout edges.
std::set<std::size_t> reference_cone(const Netlist& netlist, NetId start) {
  std::set<std::size_t> cone;
  std::queue<NetId> frontier;
  std::set<std::size_t> seen_nets;
  frontier.push(start);
  seen_nets.insert(start.value());
  while (!frontier.empty()) {
    const NetId net = frontier.front();
    frontier.pop();
    for (const GateId g : netlist.net(net).fanout_gates) {
      if (cone.insert(g.value()).second) {
        const NetId out = netlist.gate(g).output;
        if (seen_nets.insert(out.value()).second) frontier.push(out);
      }
    }
  }
  return cone;
}

TEST(FlatViewTest, GateArraysMatchNetlist) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist netlist = testing::make_random_netlist(library(), seed);
    const FlatNetlistView view(netlist);

    ASSERT_EQ(view.num_gates(), netlist.num_gates());
    ASSERT_EQ(view.num_nets(), netlist.num_nets());
    ASSERT_EQ(view.num_flip_flops(), netlist.num_flip_flops());
    ASSERT_EQ(view.num_primary_inputs(), netlist.primary_inputs().size());

    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      const Gate& gate = netlist.gate(GateId{g});
      const Cell& cell = netlist.library().cell(gate.cell);
      ASSERT_EQ(view.gate_num_inputs(g), gate.inputs.size());
      const std::uint32_t* inputs = view.gate_inputs_begin(g);
      for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
        EXPECT_EQ(inputs[i], gate.inputs[i].value());
      }
      EXPECT_EQ(view.gate_output(g), gate.output.value());
      EXPECT_EQ(view.gate_truth(g), cell.truth_table());
      EXPECT_DOUBLE_EQ(view.gate_inertial_delay_ps(g),
                       cell.inertial_delay().value());
    }
  }
}

TEST(FlatViewTest, SourceDescriptorsMatchDrivers) {
  Netlist netlist(library(), "sources");
  const NetId a = netlist.add_primary_input("a");
  const NetId k1 = netlist.add_constant(true, "one");
  const GateId g =
      netlist.add_gate(library().cell_for(CellKind::kAnd2), {a, k1}, "y");
  const NetId y = netlist.gate(g).output;
  const FlipFlopId ff = netlist.add_flip_flop(y, "q");
  const NetId q = netlist.flip_flop(ff).q;
  netlist.mark_primary_output(q);
  netlist.mark_primary_output(y);
  netlist.validate();

  const FlatNetlistView view(netlist);
  EXPECT_EQ(view.source_kind(a.value()), FlatNetlistView::SourceKind::kPrimaryInput);
  EXPECT_EQ(view.source_index(a.value()), 0u);
  EXPECT_EQ(view.source_kind(k1.value()), FlatNetlistView::SourceKind::kConstant);
  EXPECT_EQ(view.source_index(k1.value()), 1u);
  EXPECT_EQ(view.source_kind(y.value()), FlatNetlistView::SourceKind::kGate);
  EXPECT_EQ(view.source_index(y.value()), g.value());
  EXPECT_EQ(view.source_kind(q.value()), FlatNetlistView::SourceKind::kFlipFlop);
  EXPECT_EQ(view.source_index(q.value()), ff.value());
  ASSERT_EQ(view.ff_d_net(ff.value()), y.value());
  ASSERT_EQ(view.po_nets().size(), 2u);
}

TEST(FlatViewTest, FanoutAdjacencyMatchesNetlist) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist netlist = testing::make_random_netlist(library(), seed);
    const FlatNetlistView view(netlist);
    for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
      const Net& net = netlist.net(NetId{n});
      // The CSR list holds one entry per (gate, pin) pair; a gate reading
      // the net on two pins appears twice, exactly as in fanout_gates.
      ASSERT_EQ(view.net_fanout_size(n), net.fanout_gates.size());
      std::vector<std::uint32_t> expected;
      for (const GateId g : net.fanout_gates) expected.push_back(g.value());
      std::vector<std::uint32_t> actual(
          view.net_fanout_begin(n), view.net_fanout_begin(n) + view.net_fanout_size(n));
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected);
    }
  }
}

TEST(FlatViewTest, TopoOrderMatchesNetlistAndPositionsInvert) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist netlist = testing::make_random_netlist(library(), seed);
    const FlatNetlistView view(netlist);
    const std::vector<GateId>& reference = netlist.topological_order();
    ASSERT_EQ(view.topo_order().size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(view.topo_order()[i], reference[i].value());
      EXPECT_EQ(view.topo_position(reference[i].value()), i);
    }
  }
}

TEST(FlatViewTest, LevelsRespectDependencies) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Netlist netlist = testing::make_random_netlist(library(), seed);
    const FlatNetlistView view(netlist);
    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      std::uint32_t max_input_level = 0;
      bool any_gate_input = false;
      const Gate& gate = netlist.gate(GateId{g});
      for (const NetId in : gate.inputs) {
        if (netlist.net(in).driver_kind == DriverKind::kGate) {
          any_gate_input = true;
          max_input_level = std::max(
              max_input_level, view.level(netlist.net(in).driver_index));
        }
      }
      EXPECT_EQ(view.level(g), any_gate_input ? max_input_level + 1 : 0u);
      EXPECT_LT(view.level(g), view.num_levels());
    }
  }
}

TEST(FlatViewTest, ConesMatchBfsReferenceAndAreTopoSorted) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist netlist = testing::make_random_netlist(library(), seed);
    const FlatNetlistView view(netlist);
    for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
      const auto& cone = view.cone_of(NetId{n});
      const std::set<std::size_t> reference =
          reference_cone(netlist, NetId{n});
      ASSERT_EQ(cone.size(), reference.size());
      for (std::size_t i = 0; i < cone.size(); ++i) {
        EXPECT_TRUE(reference.count(cone[i]));
        if (i > 0) {
          EXPECT_LT(view.topo_position(cone[i - 1]),
                    view.topo_position(cone[i]));
        }
      }
      // Acyclicity: the struck net's own driver can never be reached
      // again — the invariant cone-restricted propagation relies on.
      if (netlist.net(NetId{n}).driver_kind == DriverKind::kGate) {
        EXPECT_FALSE(reference.count(netlist.net(NetId{n}).driver_index));
      }
    }
  }
}

TEST(FlatViewTest, ConeMemoizationIsStableAndThreadSafe) {
  const Netlist netlist = testing::make_random_netlist(library(), 7);
  const FlatNetlistView view(netlist);
  // Same object back on repeat queries.
  const auto& first = view.cone_of(NetId{0});
  EXPECT_EQ(&first, &view.cone_of(NetId{0}));
  // Concurrent queries over all nets must agree with the serial answer.
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
        const auto& cone = view.cone_of(NetId{n});
        if (cone.size() != reference_cone(netlist, NetId{n}).size()) {
          ok = false;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace cwsp
