// Metrics registry: lock-free instruments with stable references, log2
// latency histograms, and a deterministic JSON dump. The registry feeds
// the analysis service's `metrics` request and `--metrics-json` shutdown
// dump, so the JSON shape is part of the protocol (docs/service.md).

#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cwsp::metrics {
namespace {

TEST(Metrics, CounterAddsAndReads) {
  Registry registry;
  Counter& c = registry.counter("requests");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // find-or-create returns the same instrument.
  EXPECT_EQ(&registry.counter("requests"), &c);
  EXPECT_NE(&registry.counter("other"), &c);
}

TEST(Metrics, GaugeSetsAndAdjusts) {
  Registry registry;
  Gauge& g = registry.gauge("depth");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-9);
  EXPECT_EQ(g.value(), -2);
}

TEST(Metrics, HistogramAggregates) {
  Registry registry;
  Histogram& h = registry.histogram("latency");
  EXPECT_EQ(h.quantile_us(0.5), 0u);  // empty

  h.observe_us(1);
  h.observe_us(100);
  h.observe_us(10000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum_us(), 10101u);
  EXPECT_EQ(h.max_us(), 10000u);
  // Bucket-edge estimates: quantiles are monotone and bracket the data.
  EXPECT_GE(h.quantile_us(0.99), h.quantile_us(0.5));
  EXPECT_GE(h.quantile_us(0.5), 100u);
  EXPECT_LE(h.quantile_us(0.99), 2u * 10000u);
}

TEST(Metrics, HistogramObserveMsConvertsAndClamps) {
  Registry registry;
  Histogram& h = registry.histogram("latency");
  h.observe_ms(1.5);
  h.observe_ms(-3.0);  // negative wall-clock never underflows
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum_us(), 1500u);
}

TEST(Metrics, CountersAreThreadSafe) {
  Registry registry;
  Counter& c = registry.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(Metrics, JsonIsDeterministicAndSorted) {
  Registry a;
  a.counter("zeta").add(1);
  a.counter("alpha").add(2);
  a.gauge("depth").set(3);
  a.histogram("lat").observe_us(10);

  Registry b;
  b.histogram("lat").observe_us(10);
  b.gauge("depth").set(3);
  b.counter("alpha").add(2);
  b.counter("zeta").add(1);

  // Same instruments in any registration order -> identical document.
  EXPECT_EQ(a.to_json(), b.to_json());
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"schema\": \"cwsp-metrics-v1\""), std::string::npos);
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"p50_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

TEST(Metrics, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace cwsp::metrics
