// Algebraic properties of the digital waveform representation under
// random pulse sequences.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/digital_waveform.hpp"

namespace cwsp::sim {
namespace {

class WaveformProperties : public ::testing::TestWithParam<std::uint64_t> {};

DigitalWaveform random_waveform(Rng& rng, int pulses) {
  DigitalWaveform w(rng.next_bool());
  for (int i = 0; i < pulses; ++i) {
    const double t0 = rng.next_double_in(0.0, 900.0);
    const double t1 = t0 + rng.next_double_in(1.0, 100.0);
    w.xor_pulse(t0, t1);
  }
  return w;
}

TEST_P(WaveformProperties, XorPulseIsInvolution) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    auto w = random_waveform(rng, 5);
    const auto before = w.transitions();
    const double t0 = rng.next_double_in(0.0, 500.0);
    const double t1 = t0 + rng.next_double_in(1.0, 200.0);
    w.xor_pulse(t0, t1);
    w.xor_pulse(t0, t1);
    EXPECT_EQ(w.transitions(), before);
  }
}

TEST_P(WaveformProperties, TransitionsStaySortedAndUnique) {
  Rng rng(GetParam());
  const auto w = random_waveform(rng, 12);
  const auto& t = w.transitions();
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LT(t[i - 1], t[i]);
  }
}

TEST_P(WaveformProperties, InertialFilterPreservesFinalValue) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    auto w = random_waveform(rng, 8);
    const bool final_before = w.final_value();
    w.inertial_filter(rng.next_double_in(0.0, 60.0));
    EXPECT_EQ(w.final_value(), final_before);
    EXPECT_EQ(w.initial(), w.value_at(-1.0));
  }
}

TEST_P(WaveformProperties, InertialFilterOnlyRemovesTransitions) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    auto w = random_waveform(rng, 8);
    const auto count_before = w.transitions().size();
    w.inertial_filter(30.0);
    EXPECT_LE(w.transitions().size(), count_before);
    // And what remains respects the minimum width between consecutive
    // toggles.
    const auto& t = w.transitions();
    for (std::size_t i = 1; i < t.size(); ++i) {
      EXPECT_GE(t[i] - t[i - 1], 30.0 - 1e-9);
    }
  }
}

TEST_P(WaveformProperties, ValueAtConsistentWithToggleParity) {
  Rng rng(GetParam());
  const auto w = random_waveform(rng, 10);
  for (int probe = 0; probe < 50; ++probe) {
    const double t = rng.next_double_in(-10.0, 1100.0);
    std::size_t toggles = 0;
    for (double tr : w.transitions()) {
      if (tr <= t) ++toggles;
    }
    const bool expected = (toggles % 2 == 0) ? w.initial() : !w.initial();
    EXPECT_EQ(w.value_at(t), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveformProperties,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace cwsp::sim
