#include "bencharness/generator.hpp"

#include <gtest/gtest.h>

#include "sta/sta.hpp"

namespace cwsp::bench {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(GeneratorTest, CalibratesSmallCircuit) {
  const auto& spec = find_benchmark("alu2");
  const auto g = generate_benchmark(spec, lib_);
  EXPECT_NEAR(g.measured_dmax.value(), spec.dmax_ps, 8.0);
  EXPECT_NEAR(g.measured_area.value(), spec.regular_area_um2, 0.05);
  EXPECT_EQ(g.netlist.primary_inputs().size(),
            static_cast<std::size_t>(spec.num_inputs));
  EXPECT_EQ(g.netlist.primary_outputs().size(),
            static_cast<std::size_t>(spec.num_outputs));
}

TEST_F(GeneratorTest, CalibratesFastCircuit) {
  const auto& spec = find_benchmark("ex4p");  // smallest Dmax (630 ps)
  const auto g = generate_benchmark(spec, lib_);
  EXPECT_NEAR(g.measured_dmax.value(), spec.dmax_ps, 8.0);
  EXPECT_NEAR(g.measured_area.value(), spec.regular_area_um2, 0.05);
}

TEST_F(GeneratorTest, CalibratesHighAreaLowOutputCircuit) {
  // apex2: 400 µm² on only 3 outputs — stresses the filler bundles.
  const auto& spec = find_benchmark("apex2");
  const auto g = generate_benchmark(spec, lib_);
  EXPECT_NEAR(g.measured_dmax.value(), spec.dmax_ps, 8.0);
  EXPECT_NEAR(g.measured_area.value(), spec.regular_area_um2, 0.05);
}

TEST_F(GeneratorTest, CalibratesManyOutputCircuit) {
  // C5315: 123 outputs with modest area — stresses tap/tail sharing.
  const auto& spec = find_benchmark("C5315");
  const auto g = generate_benchmark(spec, lib_);
  EXPECT_NEAR(g.measured_dmax.value(), spec.dmax_ps, 8.0);
  EXPECT_NEAR(g.measured_area.value(), spec.regular_area_um2, 0.05);
}

TEST_F(GeneratorTest, PathsReasonablyBalanced) {
  const auto g = generate_benchmark(find_benchmark("alu2"), lib_);
  // Synthetic circuits should be roughly balanced; the tables additionally
  // apply the paper's Dmin = 0.8·Dmax assumption.
  EXPECT_GT(g.measured_dmin.value(), 0.5 * g.measured_dmax.value());
  EXPECT_LE(g.measured_dmin.value(), g.measured_dmax.value());
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  const auto& spec = find_benchmark("C880");
  const auto a = generate_benchmark(spec, lib_);
  const auto b = generate_benchmark(spec, lib_);
  EXPECT_EQ(a.netlist.num_gates(), b.netlist.num_gates());
  EXPECT_DOUBLE_EQ(a.measured_dmax.value(), b.measured_dmax.value());
  EXPECT_DOUBLE_EQ(a.measured_area.value(), b.measured_area.value());
}

TEST_F(GeneratorTest, ValidNetlistProduced) {
  const auto g = generate_benchmark(find_benchmark("C432"), lib_);
  EXPECT_NO_THROW(g.netlist.validate());
  EXPECT_GT(g.netlist.num_gates(), 100u);
}

TEST_F(GeneratorTest, CloneWithOutputFfs) {
  const auto g = generate_benchmark(find_benchmark("alu2"), lib_);
  const auto seq = clone_with_output_flip_flops(g.netlist);
  EXPECT_EQ(seq.num_flip_flops(), g.netlist.primary_outputs().size());
  EXPECT_EQ(seq.num_gates(), g.netlist.num_gates());
  EXPECT_EQ(seq.primary_outputs().size(), g.netlist.primary_outputs().size());
  // Combinational timing unchanged up to FF boundary.
  const auto sta_comb = run_sta(g.netlist);
  const auto sta_seq = run_sta(seq);
  // The FF D pin adds ~7 ps of load delay on the final stage.
  EXPECT_NEAR(sta_seq.dmax.value(), sta_comb.dmax.value(), 12.0);
}

}  // namespace
}  // namespace cwsp::bench
