#include "netlist/transform.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist_fuzz.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_default_library();
};

TEST_F(TransformTest, CloneIsStructurallyIdentical) {
  const auto n = testing::make_random_netlist(lib_, 7);
  const auto copy = clone_netlist(n, "copy");
  EXPECT_EQ(copy.name(), "copy");
  EXPECT_EQ(copy.num_gates(), n.num_gates());
  EXPECT_EQ(copy.num_flip_flops(), n.num_flip_flops());
  EXPECT_EQ(copy.primary_inputs().size(), n.primary_inputs().size());
  EXPECT_DOUBLE_EQ(copy.total_area().value(), n.total_area().value());
}

TEST_F(TransformTest, SweepFoldsConstantCone) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
one = VDD
zero = GND
t1 = AND(one, zero)
t2 = OR(t1, a)
y  = BUFF(t2)
)",
                                    lib_);
  const auto swept = sweep_constants(n);
  // t1 = 0; t2 = OR(0, a) = a → buffer; y = buffer.
  EXPECT_LT(swept.num_gates(), n.num_gates());
  for (GateId g : swept.gate_ids()) {
    const CellKind kind = swept.cell_of(g).kind();
    EXPECT_TRUE(kind == CellKind::kBuf || kind == CellKind::kInv)
        << swept.cell_of(g).name();
  }
}

TEST_F(TransformTest, SweepProducesConstantOutput) {
  const auto n = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
zero = GND
y = AND(a, zero)
)",
                                    lib_);
  const auto swept = sweep_constants(n);
  EXPECT_EQ(swept.num_gates(), 0u);
  const Net& y = swept.net(*swept.find_net("y"));
  EXPECT_EQ(y.driver_kind, DriverKind::kConstant);
  EXPECT_FALSE(y.constant_value);
}

TEST_F(TransformTest, SingleDependenceReduction) {
  // MUX with equal data inputs ignores the select.
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(s)
OUTPUT(y)
y = MUX(a, a, s)
)",
                                    lib_);
  const auto swept = sweep_constants(n);
  ASSERT_EQ(swept.num_gates(), 1u);
  EXPECT_EQ(swept.cell_of(GateId{0}).kind(), CellKind::kBuf);
}

TEST_F(TransformTest, DeadLogicRemoved) {
  // A cone that never reaches a PO is dropped (the input netlist need not
  // validate; the cleaned one must).
  Netlist m(lib_, "dead");
  const NetId b = m.add_primary_input("b");
  const GateId keep = m.add_gate(lib_.cell_for(CellKind::kInv), {b}, "y");
  const GateId waste1 = m.add_gate(lib_.cell_for(CellKind::kBuf), {b}, "w1");
  m.add_gate(lib_.cell_for(CellKind::kInv), {m.gate(waste1).output}, "w2");
  m.mark_primary_output(m.gate(keep).output);

  const auto cleaned = remove_dead_logic(m);
  EXPECT_EQ(cleaned.num_gates(), 1u);
  EXPECT_NO_THROW(cleaned.validate());
  // Idempotent on already-clean netlists.
  EXPECT_EQ(remove_dead_logic(cleaned).num_gates(), 1u);
}

TEST_F(TransformTest, DeadFlipFlopRemoved) {
  // An FF whose Q reaches no output is dropped along with its cone.
  Netlist m(lib_, "deadff");
  const NetId a = m.add_primary_input("a");
  const GateId g = m.add_gate(lib_.cell_for(CellKind::kInv), {a}, "d");
  const FlipFlopId ff = m.add_flip_flop(m.gate(g).output, "q");
  m.add_gate(lib_.cell_for(CellKind::kInv), {m.flip_flop(ff).q}, "qs");
  const GateId y = m.add_gate(lib_.cell_for(CellKind::kBuf), {a}, "y");
  m.mark_primary_output(m.gate(y).output);

  const auto cleaned = remove_dead_logic(m);
  EXPECT_EQ(cleaned.num_flip_flops(), 0u);
  EXPECT_EQ(cleaned.num_gates(), 1u);
}

TEST_F(TransformTest, OptimizePreservesBehaviour) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const auto original = testing::make_random_netlist(lib_, seed);
    const auto [optimized, stats] = optimize(original);
    EXPECT_EQ(stats.gates_before, original.num_gates());
    EXPECT_LE(stats.gates_after, stats.gates_before);

    sim::LogicSim sim_a(original);
    sim::LogicSim sim_b(optimized);
    Rng rng(seed * 31);
    for (int cycle = 0; cycle < 16; ++cycle) {
      std::vector<bool> inputs(original.primary_inputs().size());
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        inputs[i] = rng.next_bool();
      }
      sim_a.set_inputs(inputs);
      sim_b.set_inputs(inputs);
      sim_a.evaluate();
      sim_b.evaluate();
      EXPECT_EQ(sim_a.output_values(), sim_b.output_values())
          << "seed " << seed << " cycle " << cycle;
      sim_a.clock();
      sim_b.clock();
    }
  }
}

TEST_F(TransformTest, OptimizeWithConstantsShrinks) {
  const auto n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
one = VDD
t1 = AND(a, one)
t2 = XOR(t1, b)
t3 = OR(t2, one)
y  = AND(t3, t2)
)",
                                    lib_);
  const auto [optimized, stats] = optimize(n);
  // t3 = 1, so y = t2 = XOR(a, b) modulo buffers.
  EXPECT_LT(stats.gates_after, stats.gates_before);
  sim::LogicSim sim(optimized);
  sim.set_inputs({true, false});
  sim.evaluate();
  EXPECT_TRUE(sim.output_values()[0]);
  sim.set_inputs({true, true});
  sim.evaluate();
  EXPECT_FALSE(sim.output_values()[0]);
}

}  // namespace
}  // namespace cwsp
